#include "retime/sequencer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtv {

void accumulate_move(const RetimingMove& move, const MoveClass& cls,
                     std::vector<std::uint32_t>& forward_counts,
                     MoveSequenceStats& stats) {
  ++stats.total_moves;
  if (cls.direction == MoveDirection::kForward) {
    ++stats.forward_moves;
    if (!cls.justifiable) {
      ++stats.forward_across_non_justifiable;
      RTV_CHECK(move.element.value < forward_counts.size());
      const std::uint32_t count = ++forward_counts[move.element.value];
      stats.max_forward_per_non_justifiable = std::max<std::size_t>(
          stats.max_forward_per_non_justifiable, count);
    }
  } else {
    ++stats.backward_moves;
  }
}

SequencedRetiming sequence_retiming(const Netlist& netlist,
                                    const RetimeGraph& graph,
                                    const std::vector<int>& lag) {
  RTV_REQUIRE(graph.legal_retiming(lag), "sequence_retiming: illegal retiming");

  SequencedRetiming result;
  result.retimed = netlist;  // working copy, mutated move by move
  Netlist& work = result.retimed;

  // applied[v] tracks how many net backward moves have been performed
  // across vertex v; the goal is applied == lag.
  std::vector<int> applied(graph.num_vertices(), 0);
  std::vector<std::uint32_t> forward_counts(netlist.num_slots(), 0);

  std::int64_t pending_total = 0;
  for (std::uint32_t v = 2; v < graph.num_vertices(); ++v) {
    pending_total += std::abs(lag[v]);
  }

  while (pending_total > 0) {
    bool progress = false;
    for (std::uint32_t v = 2; v < graph.num_vertices(); ++v) {
      if (applied[v] == lag[v]) continue;
      const MoveDirection dir = applied[v] < lag[v] ? MoveDirection::kBackward
                                                    : MoveDirection::kForward;
      const RetimingMove move{graph.vertex_origin(v), dir};
      if (!can_apply(work, move)) continue;
      const MoveClass cls = apply_move(work, move);
      applied[v] += (dir == MoveDirection::kBackward) ? 1 : -1;
      --pending_total;
      progress = true;
      result.moves.push_back(move);
      result.classes.push_back(cls);
      accumulate_move(move, cls, forward_counts, result.stats);
    }
    RTV_CHECK_MSG(progress,
                  "sequencer stalled: no enabled move despite pending lag");
  }
  return result;
}

}  // namespace rtv
