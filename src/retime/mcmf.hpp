#pragma once
// Generic min-cost max-flow (successive shortest augmenting paths with
// Johnson potentials). Used as the LP engine behind min-area retiming
// (the dual of the register-minimization LP is a transshipment problem).

#include <cstdint>
#include <vector>

namespace rtv {

class MinCostFlow {
 public:
  explicit MinCostFlow(std::uint32_t num_nodes);

  /// Adds a directed arc; returns its id. cost may be any integer >= 0
  /// for the SSP-with-potentials fast path; negative costs are handled by a
  /// Bellman–Ford bootstrap of the potentials.
  std::uint32_t add_arc(std::uint32_t from, std::uint32_t to,
                        std::int64_t capacity, std::int64_t cost);

  /// Sends up to max_flow units from source to sink; returns (flow, cost).
  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };
  Result solve(std::uint32_t source, std::uint32_t sink,
               std::int64_t max_flow);

  /// Flow on arc `id` after solve().
  std::int64_t flow_on(std::uint32_t id) const;

  /// Node potentials after solve(). For every arc (u, v) with residual
  /// capacity, cost + pi[u] - pi[v] >= 0 — these are the dual variables the
  /// min-area retimer turns into lags.
  const std::vector<std::int64_t>& potentials() const { return potential_; }

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t rev;       ///< index of the reverse arc in graph_[to]
    std::int64_t capacity;   ///< residual capacity
    std::int64_t cost;
  };

  bool dijkstra(std::uint32_t source, std::uint32_t sink,
                std::vector<std::uint32_t>& prev_node,
                std::vector<std::uint32_t>& prev_arc);
  void bellman_ford_potentials(std::uint32_t source);

  std::uint32_t n_;
  std::vector<std::vector<Arc>> graph_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arc_location_;
  std::vector<std::int64_t> original_capacity_;
  std::vector<std::int64_t> potential_;
  bool has_negative_cost_ = false;
};

}  // namespace rtv
