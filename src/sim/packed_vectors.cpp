#include "sim/packed_vectors.hpp"

namespace rtv {

PackedTrits::PackedTrits(unsigned num_signals, unsigned lanes)
    : num_signals_(num_signals),
      lanes_(lanes),
      words_(static_cast<unsigned>(words_for_bits(lanes))) {
  RTV_REQUIRE(lanes >= 1, "need at least one lane");
  words_data_.assign(static_cast<std::size_t>(num_signals) * words_,
                     TritWord{});
}

Trit PackedTrits::get(unsigned signal, unsigned lane) const {
  RTV_REQUIRE(signal < num_signals_ && lane < lanes_, "index out of range");
  return get_trit(signal_words(signal)[lane / 64], lane % 64);
}

void PackedTrits::set(unsigned signal, unsigned lane, Trit t) {
  RTV_REQUIRE(signal < num_signals_ && lane < lanes_, "index out of range");
  TritWord& w = signal_words(signal)[lane / 64];
  w = set_trit(w, lane % 64, t);
}

void PackedTrits::broadcast(unsigned signal, Trit t) {
  RTV_REQUIRE(signal < num_signals_, "signal index out of range");
  TritWord fill = trit_word_fill(t);
  if (lanes_ % 64 != 0) {
    // Keep tail lanes definite-0 so whole-word comparisons stay meaningful.
    const std::uint64_t tail = low_mask(lanes_ % 64);
    TritWord* words = signal_words(signal);
    for (unsigned w = 0; w + 1 < words_; ++w) words[w] = fill;
    words[words_ - 1] = TritWord{fill.ones & tail, fill.unk & tail};
    return;
  }
  TritWord* words = signal_words(signal);
  for (unsigned w = 0; w < words_; ++w) words[w] = fill;
}

void PackedTrits::set_lane(unsigned lane, const Trits& pattern) {
  RTV_REQUIRE(pattern.size() == num_signals_, "pattern width mismatch");
  for (unsigned s = 0; s < num_signals_; ++s) set(s, lane, pattern[s]);
}

Trits PackedTrits::lane(unsigned lane) const {
  Trits out(num_signals_);
  for (unsigned s = 0; s < num_signals_; ++s) out[s] = get(s, lane);
  return out;
}

PackedTrits pack_patterns(const std::vector<Trits>& patterns) {
  RTV_REQUIRE(!patterns.empty(), "pack_patterns needs at least one pattern");
  const unsigned width = static_cast<unsigned>(patterns[0].size());
  PackedTrits packed(width, static_cast<unsigned>(patterns.size()));
  for (unsigned lane = 0; lane < patterns.size(); ++lane) {
    packed.set_lane(lane, patterns[lane]);
  }
  return packed;
}

std::vector<Trits> unpack_patterns(const PackedTrits& packed) {
  std::vector<Trits> out(packed.lanes());
  for (unsigned lane = 0; lane < packed.lanes(); ++lane) {
    out[lane] = packed.lane(lane);
  }
  return out;
}

}  // namespace rtv
