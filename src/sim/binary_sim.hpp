#pragma once
// Two-valued (Boolean) cycle-accurate netlist simulator.
//
// Latches have no reset: the power-up state is whatever the caller supplies
// via set_state / eval. Each step() evaluates the combinational logic for
// the current (state, inputs), emits the primary-output values of that
// cycle, then clocks every latch with the value at its data pin.

#include "netlist/netlist.hpp"
#include "sim/port_map.hpp"
#include "sim/vectors.hpp"

namespace rtv {

class BinarySimulator {
 public:
  /// The netlist must stay alive and structurally unchanged while the
  /// simulator exists. Not thread-safe (shared scratch buffers).
  explicit BinarySimulator(const Netlist& netlist);

  unsigned num_inputs() const { return static_cast<unsigned>(netlist_.primary_inputs().size()); }
  unsigned num_outputs() const { return static_cast<unsigned>(netlist_.primary_outputs().size()); }
  unsigned num_latches() const { return static_cast<unsigned>(netlist_.latches().size()); }

  /// Sets the current latch state (layout: Netlist::latches() order).
  void set_state(const Bits& latch_values);
  const Bits& state() const { return state_; }

  /// One clock cycle from the current state; returns this cycle's outputs.
  Bits step(const Bits& inputs);

  /// Runs a whole input sequence; returns one output vector per cycle.
  BitsSeq run(const BitsSeq& inputs);

  /// Runs many independent input sequences from one shared power-up state,
  /// 64 sequences per machine word via the packed ternary engine
  /// (sim/packed_sim.hpp). Result i equals running sequence i alone from
  /// `state`. Static because the lanes share nothing with this simulator.
  static std::vector<BitsSeq> run_batch(const Netlist& netlist,
                                        const Bits& state,
                                        const std::vector<BitsSeq>& tests);

  /// Pure transition-function query: outputs and next state for an explicit
  /// (state, inputs) pair. Does not touch the internal state.
  void eval(const Bits& state, const Bits& inputs, Bits& outputs,
            Bits& next_state) const;

  /// Packed variant for STG extraction: state/input bits packed little-endian
  /// into words (requires <= 64 latches and <= 64 inputs).
  void eval_packed(std::uint64_t state, std::uint64_t inputs,
                   std::uint64_t& outputs, std::uint64_t& next_state) const;

 private:
  void eval_into(const Bits& state, const Bits& inputs, Bits& outputs,
                 Bits& next_state, std::vector<std::uint8_t>& values) const;

  const Netlist& netlist_;
  PortMap ports_;
  std::vector<NodeId> topo_;
  /// Position of each PI / PO / latch node within its vector (by slot).
  std::vector<std::uint32_t> io_pos_;
  Bits state_;
  mutable std::vector<std::uint8_t> values_;
};

}  // namespace rtv
