#pragma once
// Bit-parallel two-valued simulator: 64 independent machine instances per
// word. Used by the exact three-valued simulator (one lane per power-up
// completion), by the fault simulator (one lane per power-up state), and by
// the throughput benchmarks.

#include <cstdint>

#include "netlist/netlist.hpp"
#include "sim/port_map.hpp"
#include "sim/vectors.hpp"

namespace rtv {

class ParallelBinarySimulator {
 public:
  using Word = std::uint64_t;
  static constexpr unsigned kLanesPerWord = 64;

  /// `lanes` independent instances of the netlist (rounded up to whole words
  /// internally; lanes beyond `lanes()` hold unspecified values).
  ParallelBinarySimulator(const Netlist& netlist, unsigned lanes);

  unsigned lanes() const { return lanes_; }
  unsigned words() const { return words_; }
  unsigned num_inputs() const { return static_cast<unsigned>(netlist_.primary_inputs().size()); }
  unsigned num_outputs() const { return static_cast<unsigned>(netlist_.primary_outputs().size()); }
  unsigned num_latches() const { return static_cast<unsigned>(netlist_.latches().size()); }

  /// Sets latch `latch` of lane `lane`.
  void set_state_bit(unsigned latch, unsigned lane, bool value);
  bool state_bit(unsigned latch, unsigned lane) const;

  /// Sets every lane's state to the same vector.
  void set_state_broadcast(const Bits& latch_values);

  /// Reads back one lane's full latch state.
  Bits state_lane(unsigned lane) const;

  /// One clock cycle with the same input vector on every lane.
  void step_broadcast(const Bits& inputs);

  /// One clock cycle with per-lane inputs: inputs_packed is laid out
  /// [input_index * words() + word]; bit b of a word is lane 64*word+b.
  void step_packed(const std::vector<Word>& inputs_packed);

  /// Output `output` of lane `lane` from the most recent step.
  bool output_bit(unsigned output, unsigned lane) const;

  /// Packed output words of output `output` from the most recent step
  /// (words() entries).
  const Word* output_words(unsigned output) const;

 private:
  void eval_and_clock();

  const Netlist& netlist_;
  PortMap ports_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> io_pos_;
  unsigned lanes_;
  unsigned words_;
  std::vector<Word> state_;    ///< [latch * words_ + word]
  std::vector<Word> inputs_;   ///< [input * words_ + word]
  std::vector<Word> outputs_;  ///< [output * words_ + word]
  std::vector<Word> values_;   ///< [port_index * words_ + word]
};

}  // namespace rtv
