#pragma once
// Bit-plane packed ternary values: 64 independent patterns per word pair.
//
// A TritWord carries one ternary value for each of 64 lanes using two
// bit-planes, `ones` (the lane is definitely 1) and `unk` (the lane is X);
// a lane with neither bit set is definitely 0. The canonical-form invariant
// `ones & unk == 0` holds for every TritWord produced by this header.
//
// The gate functions below are the word-parallel forms of the exact per-gate
// ternary extensions in ternary/trit.hpp (not3/and3/or3/xor3/mux3): for
// every lane, `and_w(a, b)` equals `and3(a_lane, b_lane)`, and so on. The
// derivations are spelled out per-op and documented with full truth tables
// in docs/performance.md. Two derived planes make them compact:
//
//   could-be-1(a) = a.ones | a.unk       (some completion of lane is 1)
//   could-be-0(a) = ~a.ones              (some completion is 0; uses the
//                                         canonical invariant: unk ⊆ ~ones)

#include <cstdint>
#include <vector>

#include "sim/vectors.hpp"
#include "ternary/trit.hpp"
#include "util/bits.hpp"

namespace rtv {

struct TritWord {
  std::uint64_t ones = 0;  ///< plane of definite-1 lanes
  std::uint64_t unk = 0;   ///< plane of X lanes (disjoint from `ones`)

  constexpr bool operator==(const TritWord&) const = default;
};

/// Plane of definite-0 lanes.
constexpr std::uint64_t zeros_plane(TritWord a) { return ~(a.ones | a.unk); }

/// All 64 lanes set to the same ternary value.
constexpr TritWord trit_word_fill(Trit t) {
  return t == Trit::kOne ? TritWord{~0ULL, 0}
         : t == Trit::kX ? TritWord{0, ~0ULL}
                         : TritWord{0, 0};
}

constexpr Trit get_trit(TritWord w, unsigned lane) {
  if (get_bit(w.unk, lane)) return Trit::kX;
  return get_bit(w.ones, lane) ? Trit::kOne : Trit::kZero;
}

constexpr TritWord set_trit(TritWord w, unsigned lane, Trit t) {
  return TritWord{set_bit(w.ones, lane, t == Trit::kOne),
                  set_bit(w.unk, lane, t == Trit::kX)};
}

// ---------------------------------------------------------------------------
// Word-parallel ternary gate functions (lane-wise not3/and3/or3/xor3/mux3).
// ---------------------------------------------------------------------------

/// NOT flips the definite lanes and leaves X lanes X.
constexpr TritWord not_w(TritWord a) {
  return TritWord{zeros_plane(a), a.unk};
}

/// AND is 0 where either side is definitely 0, 1 where both are definitely
/// 1, X elsewhere (the dominant-0 rule: 0 AND X = 0).
constexpr TritWord and_w(TritWord a, TritWord b) {
  const std::uint64_t ones = a.ones & b.ones;
  const std::uint64_t zero = zeros_plane(a) | zeros_plane(b);
  return TritWord{ones, ~(ones | zero)};
}

/// OR is the dual: 1 dominates X.
constexpr TritWord or_w(TritWord a, TritWord b) {
  const std::uint64_t ones = a.ones | b.ones;
  const std::uint64_t zero = zeros_plane(a) & zeros_plane(b);
  return TritWord{ones, ~(ones | zero)};
}

/// XOR has no dominant value: any X input makes the output X.
constexpr TritWord xor_w(TritWord a, TritWord b) {
  const std::uint64_t unk = a.unk | b.unk;
  return TritWord{(a.ones ^ b.ones) & ~unk, unk};
}

/// MUX(s, a, b) = s ? b : a, with the exact-extension refinement that an X
/// select still yields a definite output where both data inputs agree on it.
constexpr TritWord mux_w(TritWord s, TritWord a, TritWord b) {
  const std::uint64_t s0 = zeros_plane(s);
  const std::uint64_t ones =
      (s0 & a.ones) | (s.ones & b.ones) | (s.unk & a.ones & b.ones);
  const std::uint64_t zero = (s0 & zeros_plane(a)) |
                             (s.ones & zeros_plane(b)) |
                             (s.unk & zeros_plane(a) & zeros_plane(b));
  return TritWord{ones, ~(ones | zero)};
}

// ---------------------------------------------------------------------------
// Packed pattern batches: S signals × L lanes, two planes per word.
// ---------------------------------------------------------------------------

/// A rectangular batch of ternary patterns: `num_signals()` signals wide,
/// `lanes()` patterns deep, stored as TritWords laid out
/// [signal * words() + word]; bit b of word w belongs to lane 64*w + b.
/// Lanes beyond `lanes()` (the tail of the last word) stay definite-0.
class PackedTrits {
 public:
  PackedTrits(unsigned num_signals, unsigned lanes);

  unsigned num_signals() const { return num_signals_; }
  unsigned lanes() const { return lanes_; }
  unsigned words() const { return words_; }

  Trit get(unsigned signal, unsigned lane) const;
  void set(unsigned signal, unsigned lane, Trit t);

  /// Sets every lane of one signal to the same value.
  void broadcast(unsigned signal, Trit t);

  /// Writes/reads a whole pattern (one value per signal) at a lane.
  void set_lane(unsigned lane, const Trits& pattern);
  Trits lane(unsigned lane) const;

  TritWord* signal_words(unsigned signal) {
    return &words_data_[static_cast<std::size_t>(signal) * words_];
  }
  const TritWord* signal_words(unsigned signal) const {
    return &words_data_[static_cast<std::size_t>(signal) * words_];
  }

 private:
  unsigned num_signals_;
  unsigned lanes_;
  unsigned words_;
  std::vector<TritWord> words_data_;
};

/// Packs `patterns.size()` equal-width patterns into a batch, one per lane.
PackedTrits pack_patterns(const std::vector<Trits>& patterns);

/// Inverse of pack_patterns.
std::vector<Trits> unpack_patterns(const PackedTrits& packed);

}  // namespace rtv
