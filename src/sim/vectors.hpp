#pragma once
// Value-vector types shared by all simulators.
//
// Bit vectors are std::vector<std::uint8_t> holding 0/1 (not vector<bool>,
// whose proxy references pessimize the inner simulation loops). Trit vectors
// hold three-valued values. Sequences are per-cycle vectors, index 0 first.

#include <cstdint>
#include <string>
#include <vector>

#include "ternary/trit.hpp"

namespace rtv {

using Bits = std::vector<std::uint8_t>;      ///< one 0/1 value per signal
using BitsSeq = std::vector<Bits>;           ///< one Bits per clock cycle
using Trits = std::vector<Trit>;             ///< one ternary value per signal
using TritsSeq = std::vector<Trits>;         ///< one Trits per clock cycle

/// Parses "0101" into {0,1,0,1}. Throws ParseError on other characters.
Bits bits_from_string(const std::string& s);

/// Renders {0,1,0,1} as "0101".
std::string to_string(const Bits& bits);

/// Renders a sequence joined with '.', e.g. "0.0.1.0".
std::string sequence_to_string(const BitsSeq& seq);

/// Parses a '.'-separated sequence of bit vectors, e.g. "01.11.00".
BitsSeq bits_seq_from_string(const std::string& s);

/// Parses a '.'-separated sequence of trit vectors, e.g. "0X.11".
TritsSeq trits_seq_from_string(const std::string& s);

/// Packs bits (bit i of the result = bits[i]) — requires size <= 64.
std::uint64_t pack_bits(const Bits& bits);

/// Unpacks the low `width` bits of `word`.
Bits unpack_bits(std::uint64_t word, unsigned width);

/// Lifts a bit vector to trits.
Trits to_trits(const Bits& bits);

/// Lifts a bit sequence to a trit sequence.
TritsSeq to_trits(const BitsSeq& seq);

/// True iff every trit is definite; fills `out` with the Boolean values.
bool try_lower_to_bits(const Trits& trits, Bits& out);

/// Packs a trit vector base-3 (trit i contributes digit 3^i); size <= 40.
std::uint64_t pack_trits(const Trits& trits);

/// Unpacks a base-3 packed trit vector of the given width.
Trits unpack_trits(std::uint64_t code, unsigned width);

}  // namespace rtv
