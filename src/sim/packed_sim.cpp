#include "sim/packed_sim.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace rtv {

PackedTernarySimulator::PackedTernarySimulator(const Netlist& netlist,
                                               unsigned lanes)
    : netlist_(netlist),
      ports_(netlist),
      topo_(combinational_topo_order(netlist)),
      io_pos_(netlist.num_slots(), 0),
      lanes_(lanes),
      words_(static_cast<unsigned>(words_for_bits(lanes))) {
  RTV_REQUIRE(lanes >= 1, "need at least one lane");
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos_[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());
  state_.assign(static_cast<std::size_t>(num_latches()) * words_,
                trit_word_fill(Trit::kX));
  inputs_.assign(static_cast<std::size_t>(num_inputs()) * words_, TritWord{});
  outputs_.assign(static_cast<std::size_t>(num_outputs()) * words_,
                  TritWord{});
  values_.assign(static_cast<std::size_t>(ports_.size()) * words_, TritWord{});
}

void PackedTernarySimulator::reset_to_all_x() {
  std::fill(state_.begin(), state_.end(), trit_word_fill(Trit::kX));
}

void PackedTernarySimulator::set_state_trit(unsigned latch, unsigned lane,
                                            Trit value) {
  RTV_REQUIRE(latch < num_latches() && lane < lanes_, "index out of range");
  TritWord& w = state_[static_cast<std::size_t>(latch) * words_ + lane / 64];
  w = set_trit(w, lane % 64, value);
}

Trit PackedTernarySimulator::state_trit(unsigned latch, unsigned lane) const {
  RTV_REQUIRE(latch < num_latches() && lane < lanes_, "index out of range");
  return get_trit(state_[static_cast<std::size_t>(latch) * words_ + lane / 64],
                  lane % 64);
}

void PackedTernarySimulator::set_state_broadcast(const Trits& latch_values) {
  RTV_REQUIRE(latch_values.size() == num_latches(),
              "state vector size mismatch");
  for (unsigned l = 0; l < num_latches(); ++l) {
    const TritWord fill = trit_word_fill(latch_values[l]);
    for (unsigned w = 0; w < words_; ++w) {
      state_[static_cast<std::size_t>(l) * words_ + w] = fill;
    }
  }
}

Trits PackedTernarySimulator::state_lane(unsigned lane) const {
  Trits out(num_latches());
  for (unsigned l = 0; l < num_latches(); ++l) out[l] = state_trit(l, lane);
  return out;
}

void PackedTernarySimulator::step_broadcast(const Trits& inputs) {
  RTV_REQUIRE(inputs.size() == num_inputs(), "input vector size mismatch");
  for (unsigned i = 0; i < num_inputs(); ++i) {
    const TritWord fill = trit_word_fill(inputs[i]);
    for (unsigned w = 0; w < words_; ++w) {
      inputs_[static_cast<std::size_t>(i) * words_ + w] = fill;
    }
  }
  eval_and_clock();
}

void PackedTernarySimulator::step_packed(const PackedTrits& inputs) {
  RTV_REQUIRE(inputs.num_signals() == num_inputs(),
              "packed input width mismatch");
  RTV_REQUIRE(inputs.words() == words_, "packed input lane-word mismatch");
  for (unsigned i = 0; i < num_inputs(); ++i) {
    const TritWord* src = inputs.signal_words(i);
    TritWord* dst = &inputs_[static_cast<std::size_t>(i) * words_];
    for (unsigned w = 0; w < words_; ++w) dst[w] = src[w];
  }
  eval_and_clock();
}

Trit PackedTernarySimulator::output_trit(unsigned output, unsigned lane) const {
  RTV_REQUIRE(output < num_outputs() && lane < lanes_, "index out of range");
  return get_trit(
      outputs_[static_cast<std::size_t>(output) * words_ + lane / 64],
      lane % 64);
}

const TritWord* PackedTernarySimulator::output_words(unsigned output) const {
  RTV_REQUIRE(output < num_outputs(), "output index out of range");
  return &outputs_[static_cast<std::size_t>(output) * words_];
}

void PackedTernarySimulator::eval_and_clock() {
  const unsigned W = words_;
  TritWord* const vals = values_.data();
  const auto port_words = [&](PortRef p) -> TritWord* {
    return vals + static_cast<std::size_t>(ports_.index(p)) * W;
  };

  for (const NodeId id : topo_) {
    const Node& n = netlist_.node(id);
    TritWord* const out =
        vals + static_cast<std::size_t>(ports_.index(PortRef(id, 0))) * W;
    switch (n.kind) {
      case CellKind::kInput: {
        const TritWord* src =
            &inputs_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        for (unsigned w = 0; w < W; ++w) out[w] = src[w];
        break;
      }
      case CellKind::kLatch: {
        const TritWord* src =
            &state_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        for (unsigned w = 0; w < W; ++w) out[w] = src[w];
        break;
      }
      case CellKind::kOutput: {
        TritWord* dst =
            &outputs_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        const TritWord* src = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) dst[w] = src[w];
        break;
      }
      case CellKind::kConst0:
        for (unsigned w = 0; w < W; ++w) out[w] = TritWord{0, 0};
        break;
      case CellKind::kConst1:
        for (unsigned w = 0; w < W; ++w) out[w] = TritWord{~0ULL, 0};
        break;
      case CellKind::kBuf: {
        const TritWord* a = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) out[w] = a[w];
        break;
      }
      case CellKind::kNot: {
        const TritWord* a = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) out[w] = not_w(a[w]);
        break;
      }
      case CellKind::kAnd:
      case CellKind::kNand: {
        for (unsigned w = 0; w < W; ++w) out[w] = TritWord{~0ULL, 0};
        for (const PortRef& d : n.fanin) {
          const TritWord* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] = and_w(out[w], a[w]);
        }
        if (n.kind == CellKind::kNand) {
          for (unsigned w = 0; w < W; ++w) out[w] = not_w(out[w]);
        }
        break;
      }
      case CellKind::kOr:
      case CellKind::kNor: {
        for (unsigned w = 0; w < W; ++w) out[w] = TritWord{0, 0};
        for (const PortRef& d : n.fanin) {
          const TritWord* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] = or_w(out[w], a[w]);
        }
        if (n.kind == CellKind::kNor) {
          for (unsigned w = 0; w < W; ++w) out[w] = not_w(out[w]);
        }
        break;
      }
      case CellKind::kXor:
      case CellKind::kXnor: {
        for (unsigned w = 0; w < W; ++w) out[w] = TritWord{0, 0};
        for (const PortRef& d : n.fanin) {
          const TritWord* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] = xor_w(out[w], a[w]);
        }
        if (n.kind == CellKind::kXnor) {
          for (unsigned w = 0; w < W; ++w) out[w] = not_w(out[w]);
        }
        break;
      }
      case CellKind::kMux: {
        const TritWord* s = port_words(n.fanin[0]);
        const TritWord* a = port_words(n.fanin[1]);
        const TritWord* b = port_words(n.fanin[2]);
        for (unsigned w = 0; w < W; ++w) out[w] = mux_w(s[w], a[w], b[w]);
        break;
      }
      case CellKind::kJunc: {
        const TritWord* a = port_words(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          TritWord* dst = port_words(PortRef(id, p));
          for (unsigned w = 0; w < W; ++w) dst[w] = a[w];
        }
        break;
      }
      case CellKind::kTable: {
        // Per-minterm plane masking: a minterm x is a possible completion
        // of a lane iff every pin could take x's bit there; the output is
        // definite where only 1-rows (or only 0-rows) remain possible.
        // Word-parallel form of TruthTable::eval_ternary.
        const TruthTable& t = netlist_.table(n.table);
        const unsigned pins = n.num_pins();
        const unsigned num_ports = n.num_ports();
        could1_.assign(num_ports, 0);
        could0_.assign(num_ports, 0);
        for (unsigned w = 0; w < W; ++w) {
          std::fill(could1_.begin(), could1_.end(), 0);
          std::fill(could0_.begin(), could0_.end(), 0);
          for (std::uint64_t x = 0; x < pow2(pins); ++x) {
            std::uint64_t compat = ~0ULL;
            for (unsigned pin = 0; pin < pins; ++pin) {
              const TritWord v = port_words(n.fanin[pin])[w];
              compat &= get_bit(x, pin) ? (v.ones | v.unk) : ~v.ones;
            }
            if (compat == 0) continue;
            const std::uint64_t row = t.eval_row(x);
            for (std::uint32_t p = 0; p < num_ports; ++p) {
              (get_bit(row, p) ? could1_[p] : could0_[p]) |= compat;
            }
          }
          for (std::uint32_t p = 0; p < num_ports; ++p) {
            port_words(PortRef(id, p))[w] =
                TritWord{could1_[p] & ~could0_[p], could1_[p] & could0_[p]};
          }
        }
        break;
      }
    }
  }

  for (std::uint32_t i = 0; i < num_latches(); ++i) {
    const Node& latch = netlist_.node(netlist_.latches()[i]);
    const TritWord* src = port_words(latch.fanin[0]);
    TritWord* dst = &state_[static_cast<std::size_t>(i) * W];
    for (unsigned w = 0; w < W; ++w) dst[w] = src[w];
  }
}

PackedResponses::PackedResponses(std::vector<std::size_t> lengths,
                                 unsigned outputs)
    : outputs_(outputs), lengths_(std::move(lengths)) {
  offsets_.resize(lengths_.size());
  std::size_t off = 0;
  for (std::size_t lane = 0; lane < lengths_.size(); ++lane) {
    offsets_[lane] = off;
    off += lengths_[lane] * outputs_;
  }
  data_.assign(off, Trit::kX);
}

TritsSeq PackedResponses::sequence(unsigned lane) const {
  TritsSeq seq(length(lane), Trits(outputs_));
  const Trit* src = lane_data(lane);
  for (std::size_t t = 0; t < seq.size(); ++t) {
    for (unsigned o = 0; o < outputs_; ++o) seq[t][o] = *src++;
  }
  return seq;
}

PackedResponseWords::PackedResponseWords(std::vector<std::size_t> lengths,
                                         unsigned outputs)
    : outputs_(outputs),
      words_(static_cast<unsigned>(words_for_bits(lengths.size()))),
      lengths_(std::move(lengths)) {
  for (const std::size_t len : lengths_) max_length_ = std::max(max_length_, len);
  data_.assign(max_length_ * outputs_ * words_, TritWord{});
}

Trit PackedResponseWords::lane_trit(std::size_t cycle, unsigned output,
                                    unsigned lane) const {
  RTV_REQUIRE(lane < num_lanes() && output < outputs_ && cycle < length(lane),
              "index out of range");
  return get_trit(at(cycle, output, lane / 64), lane % 64);
}

void pack_cycle_inputs(const std::vector<TritsSeq>& tests, std::size_t begin,
                       std::size_t count, std::size_t t, Trit idle,
                       PackedTrits* out) {
  RTV_REQUIRE(begin + count <= tests.size(), "chunk exceeds test set");
  RTV_REQUIRE(count <= out->lanes(), "chunk exceeds packed batch width");
  const unsigned width = out->num_signals();
  const unsigned words = out->words();
  const TritWord idle_word = trit_word_fill(idle);
  for (unsigned i = 0; i < width; ++i) {
    TritWord* dst = out->signal_words(i);
    for (unsigned w = 0; w < words; ++w) {
      const std::size_t base = 64ULL * w;
      std::uint64_t ones = idle_word.ones, unk = idle_word.unk;
      const unsigned limit =
          base < count ? static_cast<unsigned>(std::min<std::size_t>(
                             64, count - base))
                       : 0;
      for (unsigned b = 0; b < limit; ++b) {
        const TritsSeq& test = tests[begin + base + b];
        const Trit v = t < test.size() ? test[t][i] : idle;
        const std::uint64_t bit = 1ULL << b;
        ones = v == Trit::kOne ? (ones | bit) : (ones & ~bit);
        unk = v == Trit::kX ? (unk | bit) : (unk & ~bit);
      }
      dst[w] = TritWord{ones, unk};
    }
  }
}

namespace {

/// Validates test widths against the simulator and returns per-lane lengths.
std::vector<std::size_t> checked_lengths(const PackedTernarySimulator& sim,
                                         const std::vector<TritsSeq>& tests) {
  std::vector<std::size_t> lengths(tests.size());
  for (std::size_t lane = 0; lane < tests.size(); ++lane) {
    for (const Trits& in : tests[lane]) {
      RTV_REQUIRE(in.size() == sim.num_inputs(), "input vector size mismatch");
    }
    lengths[lane] = tests[lane].size();
  }
  return lengths;
}

}  // namespace

PackedResponseWords packed_cls_response_words(
    const Netlist& netlist, const std::vector<TritsSeq>& tests) {
  if (tests.empty()) return PackedResponseWords({}, 0);
  const unsigned lanes = static_cast<unsigned>(tests.size());
  PackedTernarySimulator sim(netlist, lanes);
  const unsigned outputs = sim.num_outputs();
  const unsigned words = sim.words();
  PackedResponseWords responses(checked_lengths(sim, tests), outputs);
  PackedTrits cycle_inputs(sim.num_inputs(), lanes);
  for (std::size_t t = 0; t < responses.max_length(); ++t) {
    pack_cycle_inputs(tests, 0, lanes, t, Trit::kX, &cycle_inputs);
    sim.step_packed(cycle_inputs);
    for (unsigned o = 0; o < outputs; ++o) {
      const TritWord* ow = sim.output_words(o);
      for (unsigned w = 0; w < words; ++w) responses.at(t, o, w) = ow[w];
    }
  }
  return responses;
}

PackedResponseWords packed_cls_response_words(
    const Netlist& netlist, const std::vector<BitsSeq>& tests) {
  std::vector<TritsSeq> lifted;
  lifted.reserve(tests.size());
  for (const BitsSeq& test : tests) lifted.push_back(to_trits(test));
  return packed_cls_response_words(netlist, lifted);
}

namespace {

/// Shared driver for the batch runners: one lane per test sequence, ragged
/// lengths allowed (lanes past their end see `idle` inputs; their extra
/// outputs are discarded). The lane<->plane transposition works directly on
/// the bit-planes and results land in PackedResponses' flat storage, so the
/// stepping loop performs no per-lane allocation or bounds-checked calls —
/// on small netlists the transposition, not the evaluation, is the
/// throughput limit.
PackedResponses run_lanes(PackedTernarySimulator& sim,
                          const std::vector<TritsSeq>& tests, Trit idle) {
  const unsigned lanes = static_cast<unsigned>(tests.size());
  const unsigned width = sim.num_inputs();
  const unsigned outputs = sim.num_outputs();
  const unsigned words = sim.words();
  std::vector<std::size_t> lengths = checked_lengths(sim, tests);
  std::size_t max_len = 0;
  for (const std::size_t len : lengths) max_len = std::max(max_len, len);
  PackedResponses responses(std::move(lengths), outputs);
  PackedTrits cycle_inputs(width, std::max(lanes, 1u));
  for (std::size_t t = 0; t < max_len; ++t) {
    pack_cycle_inputs(tests, 0, lanes, t, idle, &cycle_inputs);
    sim.step_packed(cycle_inputs);
    for (unsigned o = 0; o < outputs; ++o) {
      const TritWord* ow = sim.output_words(o);
      for (unsigned w = 0; w < words; ++w) {
        const unsigned base = 64 * w;
        const unsigned limit = std::min(64u, lanes - base);
        const TritWord word = ow[w];
        for (unsigned b = 0; b < limit; ++b) {
          const unsigned lane = base + b;
          if (t < responses.length(lane)) {
            responses.at(lane, t, o) = get_trit(word, b);
          }
        }
      }
    }
  }
  return responses;
}

}  // namespace

PackedResponses packed_cls_responses(const Netlist& netlist,
                                     const std::vector<TritsSeq>& tests) {
  if (tests.empty()) return PackedResponses({}, 0);
  PackedTernarySimulator sim(netlist, static_cast<unsigned>(tests.size()));
  return run_lanes(sim, tests, Trit::kX);
}

PackedResponses packed_cls_responses(const Netlist& netlist,
                                     const std::vector<BitsSeq>& tests) {
  std::vector<TritsSeq> lifted;
  lifted.reserve(tests.size());
  for (const BitsSeq& test : tests) lifted.push_back(to_trits(test));
  return packed_cls_responses(netlist, lifted);
}

namespace {

std::vector<TritsSeq> materialize(const PackedResponses& responses) {
  std::vector<TritsSeq> out(responses.num_lanes());
  for (unsigned lane = 0; lane < responses.num_lanes(); ++lane) {
    out[lane] = responses.sequence(lane);
  }
  return out;
}

}  // namespace

std::vector<TritsSeq> packed_cls_run(const Netlist& netlist,
                                     const std::vector<TritsSeq>& tests) {
  return materialize(packed_cls_responses(netlist, tests));
}

std::vector<TritsSeq> packed_cls_run(const Netlist& netlist,
                                     const std::vector<BitsSeq>& tests) {
  return materialize(packed_cls_responses(netlist, tests));
}

std::vector<BitsSeq> packed_binary_run(const Netlist& netlist,
                                       const Bits& state,
                                       const std::vector<BitsSeq>& tests) {
  if (tests.empty()) return {};
  PackedTernarySimulator sim(netlist, static_cast<unsigned>(tests.size()));
  sim.set_state_broadcast(to_trits(state));
  std::vector<TritsSeq> lifted;
  lifted.reserve(tests.size());
  for (const BitsSeq& test : tests) lifted.push_back(to_trits(test));
  const PackedResponses ternary = run_lanes(sim, lifted, Trit::kZero);
  std::vector<BitsSeq> responses(ternary.num_lanes());
  for (unsigned lane = 0; lane < ternary.num_lanes(); ++lane) {
    responses[lane].reserve(ternary.length(lane));
    for (std::size_t t = 0; t < ternary.length(lane); ++t) {
      Trits out(ternary.num_outputs());
      for (unsigned o = 0; o < ternary.num_outputs(); ++o) {
        out[o] = ternary.at(lane, t, o);
      }
      Bits bits;
      RTV_CHECK(try_lower_to_bits(out, bits));
      responses[lane].push_back(std::move(bits));
    }
  }
  return responses;
}

}  // namespace rtv
