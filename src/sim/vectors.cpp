#include "sim/vectors.hpp"

#include "util/bits.hpp"
#include "util/error.hpp"

namespace rtv {

Bits bits_from_string(const std::string& s) {
  Bits out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '0') {
      out.push_back(0);
    } else if (c == '1') {
      out.push_back(1);
    } else {
      throw ParseError(std::string("invalid bit character: '") + c + "'");
    }
  }
  return out;
}

std::string to_string(const Bits& bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::uint8_t b : bits) s.push_back(b != 0 ? '1' : '0');
  return s;
}

std::string sequence_to_string(const BitsSeq& seq) {
  std::string s;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) s.push_back('.');
    s += to_string(seq[i]);
  }
  return s;
}

namespace {
std::vector<std::string> split_dots(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = s.find('.', start);
    if (dot == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, dot - start));
    start = dot + 1;
  }
}
}  // namespace

BitsSeq bits_seq_from_string(const std::string& s) {
  BitsSeq seq;
  if (s.empty()) return seq;
  for (const std::string& part : split_dots(s)) {
    seq.push_back(bits_from_string(part));
  }
  return seq;
}

TritsSeq trits_seq_from_string(const std::string& s) {
  TritsSeq seq;
  if (s.empty()) return seq;
  for (const std::string& part : split_dots(s)) {
    seq.push_back(trits_from_string(part));
  }
  return seq;
}

std::uint64_t pack_bits(const Bits& bits) {
  RTV_REQUIRE(bits.size() <= 64, "pack_bits supports at most 64 bits");
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) word |= (1ULL << i);
  }
  return word;
}

Bits unpack_bits(std::uint64_t word, unsigned width) {
  RTV_REQUIRE(width <= 64, "unpack_bits supports at most 64 bits");
  Bits bits(width);
  for (unsigned i = 0; i < width; ++i) bits[i] = get_bit(word, i) ? 1 : 0;
  return bits;
}

Trits to_trits(const Bits& bits) {
  Trits out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out[i] = to_trit(bits[i] != 0);
  return out;
}

TritsSeq to_trits(const BitsSeq& seq) {
  TritsSeq out;
  out.reserve(seq.size());
  for (const Bits& b : seq) out.push_back(to_trits(b));
  return out;
}

bool try_lower_to_bits(const Trits& trits, Bits& out) {
  out.resize(trits.size());
  for (std::size_t i = 0; i < trits.size(); ++i) {
    if (!is_definite(trits[i])) return false;
    out[i] = trits[i] == Trit::kOne ? 1 : 0;
  }
  return true;
}

std::uint64_t pack_trits(const Trits& trits) {
  RTV_REQUIRE(trits.size() <= 40, "pack_trits supports at most 40 trits");
  std::uint64_t code = 0;
  for (std::size_t i = trits.size(); i > 0; --i) {
    code = code * 3 + static_cast<std::uint64_t>(trits[i - 1]);
  }
  return code;
}

Trits unpack_trits(std::uint64_t code, unsigned width) {
  Trits out(width);
  for (unsigned i = 0; i < width; ++i) {
    out[i] = static_cast<Trit>(code % 3);
    code /= 3;
  }
  RTV_REQUIRE(code == 0, "unpack_trits: code wider than requested width");
  return out;
}

}  // namespace rtv
