#include "sim/port_map.hpp"

namespace rtv {

PortMap::PortMap(const Netlist& netlist) {
  offsets_.resize(netlist.num_slots(), 0);
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    offsets_[i] = next;
    const NodeId id(i);
    if (!netlist.is_dead(id)) next += netlist.num_ports(id);
  }
  total_ = next;
}

}  // namespace rtv
