#pragma once
// Conservative three-valued logic simulator (CLS) — paper Section 5.
//
// The CLS evaluates each combinational cell with the exact ternary extension
// of its own function ("local propagation" of X: 0·X = 0 but 1·X = X) and
// begins operation with every latch holding X. Because propagation is local,
// the CLS forgets correlations between X values — precisely the information
// forward retiming across a non-justifiable element destroys — which is why
// retiming preserves CLS-observable behaviour (Theorem 5.1, Corollary 5.3).

#include "netlist/netlist.hpp"
#include "sim/port_map.hpp"
#include "sim/vectors.hpp"

namespace rtv {

class ClsSimulator {
 public:
  /// The netlist must stay alive and structurally unchanged while the
  /// simulator exists. All latches start at X. Not thread-safe.
  explicit ClsSimulator(const Netlist& netlist);

  unsigned num_inputs() const { return static_cast<unsigned>(netlist_.primary_inputs().size()); }
  unsigned num_outputs() const { return static_cast<unsigned>(netlist_.primary_outputs().size()); }
  unsigned num_latches() const { return static_cast<unsigned>(netlist_.latches().size()); }

  /// Resets every latch to X (the CLS power-up convention).
  void reset_to_all_x();

  /// Sets an explicit ternary latch state (Netlist::latches() order).
  void set_state(const Trits& latch_values);
  const Trits& state() const { return state_; }

  /// True iff every latch currently holds a definite value — the CLS notion
  /// of the design being *reset* by the input sequence applied so far.
  bool is_fully_initialized() const;

  /// One clock cycle; returns this cycle's ternary primary outputs.
  Trits step(const Trits& inputs);

  /// Convenience overload for definite inputs.
  Trits step(const Bits& inputs) { return step(to_trits(inputs)); }

  /// Runs a whole ternary input sequence.
  TritsSeq run(const TritsSeq& inputs);
  TritsSeq run(const BitsSeq& inputs) { return run(to_trits(inputs)); }

  /// Runs many independent input sequences, each from the all-X state,
  /// 64 sequences per machine word via the packed ternary engine
  /// (sim/packed_sim.hpp). Result i equals `ClsSimulator(n).run(tests[i])`.
  /// Static because the lanes share nothing with this simulator's state.
  static std::vector<TritsSeq> run_batch(const Netlist& netlist,
                                         const std::vector<TritsSeq>& tests);

  /// Pure transition-function query; does not touch the internal state.
  void eval(const Trits& state, const Trits& inputs, Trits& outputs,
            Trits& next_state) const;

 private:
  const Netlist& netlist_;
  PortMap ports_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> io_pos_;
  Trits state_;
  mutable std::vector<Trit> values_;
  mutable Trits table_in_scratch_;
};

}  // namespace rtv
