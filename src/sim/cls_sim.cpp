#include "sim/cls_sim.hpp"

#include "sim/packed_sim.hpp"

namespace rtv {

std::vector<TritsSeq> ClsSimulator::run_batch(
    const Netlist& netlist, const std::vector<TritsSeq>& tests) {
  return packed_cls_run(netlist, tests);
}

ClsSimulator::ClsSimulator(const Netlist& netlist)
    : netlist_(netlist),
      ports_(netlist),
      topo_(combinational_topo_order(netlist)),
      io_pos_(netlist.num_slots(), 0),
      state_(netlist.latches().size(), Trit::kX),
      values_(ports_.size(), Trit::kX) {
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos_[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());
}

void ClsSimulator::reset_to_all_x() {
  state_.assign(state_.size(), Trit::kX);
}

void ClsSimulator::set_state(const Trits& latch_values) {
  RTV_REQUIRE(latch_values.size() == state_.size(),
              "state vector size mismatch");
  state_ = latch_values;
}

bool ClsSimulator::is_fully_initialized() const {
  for (Trit t : state_) {
    if (!is_definite(t)) return false;
  }
  return true;
}

Trits ClsSimulator::step(const Trits& inputs) {
  Trits outputs, next_state;
  eval(state_, inputs, outputs, next_state);
  state_ = std::move(next_state);
  return outputs;
}

TritsSeq ClsSimulator::run(const TritsSeq& inputs) {
  TritsSeq outputs;
  outputs.reserve(inputs.size());
  for (const Trits& in : inputs) outputs.push_back(step(in));
  return outputs;
}

void ClsSimulator::eval(const Trits& state, const Trits& inputs,
                        Trits& outputs, Trits& next_state) const {
  RTV_REQUIRE(state.size() == netlist_.latches().size(),
              "state vector size mismatch");
  RTV_REQUIRE(inputs.size() == netlist_.primary_inputs().size(),
              "input vector size mismatch");
  outputs.assign(netlist_.primary_outputs().size(), Trit::kX);
  next_state.assign(state.size(), Trit::kX);

  std::vector<Trit>& values = values_;
  const auto value_of = [&](PortRef p) -> Trit {
    return values[ports_.index(p)];
  };

  for (const NodeId id : topo_) {
    const Node& n = netlist_.node(id);
    const std::uint32_t base = ports_.index(PortRef(id, 0));
    switch (n.kind) {
      case CellKind::kInput:
        values[base] = inputs[io_pos_[id.value]];
        break;
      case CellKind::kLatch:
        values[base] = state[io_pos_[id.value]];
        break;
      case CellKind::kOutput:
        outputs[io_pos_[id.value]] = value_of(n.fanin[0]);
        break;
      case CellKind::kConst0:
        values[base] = Trit::kZero;
        break;
      case CellKind::kConst1:
        values[base] = Trit::kOne;
        break;
      case CellKind::kBuf:
        values[base] = value_of(n.fanin[0]);
        break;
      case CellKind::kNot:
        values[base] = not3(value_of(n.fanin[0]));
        break;
      case CellKind::kAnd:
      case CellKind::kNand: {
        Trit acc = Trit::kOne;
        for (const PortRef& d : n.fanin) acc = and3(acc, value_of(d));
        values[base] = (n.kind == CellKind::kNand) ? not3(acc) : acc;
        break;
      }
      case CellKind::kOr:
      case CellKind::kNor: {
        Trit acc = Trit::kZero;
        for (const PortRef& d : n.fanin) acc = or3(acc, value_of(d));
        values[base] = (n.kind == CellKind::kNor) ? not3(acc) : acc;
        break;
      }
      case CellKind::kXor:
      case CellKind::kXnor: {
        Trit acc = Trit::kZero;
        for (const PortRef& d : n.fanin) acc = xor3(acc, value_of(d));
        values[base] = (n.kind == CellKind::kXnor) ? not3(acc) : acc;
        break;
      }
      case CellKind::kMux:
        values[base] = mux3(value_of(n.fanin[0]), value_of(n.fanin[1]),
                            value_of(n.fanin[2]));
        break;
      case CellKind::kJunc: {
        const Trit v = value_of(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) values[base + p] = v;
        break;
      }
      case CellKind::kTable: {
        table_in_scratch_.resize(n.num_pins());
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          table_in_scratch_[pin] = value_of(n.fanin[pin]);
        }
        const Trits out =
            netlist_.table(n.table).eval_ternary(table_in_scratch_);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          values[base + p] = out[p];
        }
        break;
      }
    }
  }

  for (std::uint32_t i = 0; i < netlist_.latches().size(); ++i) {
    const Node& latch = netlist_.node(netlist_.latches()[i]);
    next_state[i] = values[ports_.index(latch.fanin[0])];
  }
}

}  // namespace rtv
