#pragma once
// Bit-parallel packed ternary simulator: 64 independent three-valued
// machine instances per TritWord, with CLS semantics per lane.
//
// Each lane evolves exactly as a ClsSimulator would (local, per-cell exact
// ternary propagation — paper Section 5), so one packed step performs 64
// conservative three-valued simulation steps. Definite (0/1) patterns make
// the unknown planes vanish and every lane then evolves exactly as a
// BinarySimulator would, which is why BinarySimulator::run_batch,
// ClsSimulator::run_batch, the CLS fault simulator and the bounded CLS
// equivalence checker all route through this one core.

#include <cstdint>

#include "netlist/netlist.hpp"
#include "sim/packed_vectors.hpp"
#include "sim/port_map.hpp"
#include "sim/vectors.hpp"

namespace rtv {

class PackedTernarySimulator {
 public:
  static constexpr unsigned kLanesPerWord = 64;

  /// `lanes` independent instances of the netlist (rounded up to whole
  /// words internally; lanes beyond `lanes()` hold unspecified values).
  /// Every lane powers up all-X, the CLS convention.
  PackedTernarySimulator(const Netlist& netlist, unsigned lanes);

  unsigned lanes() const { return lanes_; }
  unsigned words() const { return words_; }
  unsigned num_inputs() const { return static_cast<unsigned>(netlist_.primary_inputs().size()); }
  unsigned num_outputs() const { return static_cast<unsigned>(netlist_.primary_outputs().size()); }
  unsigned num_latches() const { return static_cast<unsigned>(netlist_.latches().size()); }

  /// Resets every latch of every lane to X.
  void reset_to_all_x();

  /// Sets latch `latch` of lane `lane`.
  void set_state_trit(unsigned latch, unsigned lane, Trit value);
  Trit state_trit(unsigned latch, unsigned lane) const;

  /// Sets every lane's latch state to the same ternary vector.
  void set_state_broadcast(const Trits& latch_values);

  /// Reads back one lane's full latch state.
  Trits state_lane(unsigned lane) const;

  /// One clock cycle with the same ternary input vector on every lane.
  void step_broadcast(const Trits& inputs);

  /// One clock cycle with per-lane inputs (one signal per primary input,
  /// one lane per pattern).
  void step_packed(const PackedTrits& inputs);

  /// Output `output` of lane `lane` from the most recent step.
  Trit output_trit(unsigned output, unsigned lane) const;

  /// Packed output planes of output `output` from the most recent step
  /// (words() entries).
  const TritWord* output_words(unsigned output) const;

 private:
  void eval_and_clock();

  const Netlist& netlist_;
  PortMap ports_;
  std::vector<NodeId> topo_;
  std::vector<std::uint32_t> io_pos_;
  unsigned lanes_;
  unsigned words_;
  std::vector<TritWord> state_;    ///< [latch * words_ + word]
  std::vector<TritWord> inputs_;   ///< [input * words_ + word]
  std::vector<TritWord> outputs_;  ///< [output * words_ + word]
  std::vector<TritWord> values_;   ///< [port_index * words_ + word]
  /// Table-cell scratch: per-output could-be-1 / could-be-0 planes.
  std::vector<std::uint64_t> could1_, could0_;
};

/// Per-lane output sequences of a batch run, stored flat: one allocation
/// for the whole batch instead of one vector per (lane, cycle). This is the
/// engine's native result form — on small netlists, materializing nested
/// TritsSeq vectors costs more than the simulation itself.
class PackedResponses {
 public:
  /// `lengths[lane]` cycles per lane, `outputs` trits per cycle.
  PackedResponses(std::vector<std::size_t> lengths, unsigned outputs);

  unsigned num_lanes() const { return static_cast<unsigned>(lengths_.size()); }
  unsigned num_outputs() const { return outputs_; }
  std::size_t length(unsigned lane) const { return lengths_[lane]; }

  Trit at(unsigned lane, std::size_t cycle, unsigned output) const {
    return data_[offsets_[lane] + cycle * outputs_ + output];
  }
  Trit& at(unsigned lane, std::size_t cycle, unsigned output) {
    return data_[offsets_[lane] + cycle * outputs_ + output];
  }

  /// Contiguous trits of one lane, cycle-major ([cycle * outputs + output],
  /// lane_size(lane) = length(lane) * num_outputs() entries).
  const Trit* lane_data(unsigned lane) const { return data_.data() + offsets_[lane]; }
  std::size_t lane_size(unsigned lane) const {
    return length(lane) * outputs_;
  }

  /// Materializes one lane as a per-cycle sequence.
  TritsSeq sequence(unsigned lane) const;

 private:
  unsigned outputs_;
  std::vector<std::size_t> lengths_;  ///< cycles per lane
  std::vector<std::size_t> offsets_;  ///< per-lane start in data_
  std::vector<Trit> data_;
};

/// Word-major packed batch responses: one TritWord of 64 lanes per
/// (cycle, output, word). This is the layout a packed consumer (the fault
/// engine) compares a freshly simulated 64-lane chunk against with three
/// word ops instead of a per-lane transposition — chunk c of a test set
/// lives entirely in word index c. Entries of a lane past its own test
/// length hold idle-run values; consumers must mask them out.
class PackedResponseWords {
 public:
  PackedResponseWords() = default;
  /// `lengths[lane]` cycles per lane, `outputs` trits per cycle; storage
  /// covers max(lengths) cycles for all ceil(lanes/64) words.
  PackedResponseWords(std::vector<std::size_t> lengths, unsigned outputs);

  unsigned num_lanes() const { return static_cast<unsigned>(lengths_.size()); }
  unsigned num_outputs() const { return outputs_; }
  unsigned words() const { return words_; }
  std::size_t max_length() const { return max_length_; }
  std::size_t length(unsigned lane) const { return lengths_[lane]; }
  const std::vector<std::size_t>& lengths() const { return lengths_; }

  const TritWord& at(std::size_t cycle, unsigned output, unsigned word) const {
    return data_[(cycle * outputs_ + output) * words_ + word];
  }
  TritWord& at(std::size_t cycle, unsigned output, unsigned word) {
    return data_[(cycle * outputs_ + output) * words_ + word];
  }

  /// One lane's trit at (cycle, output) — bounds-checked convenience for
  /// tests and scalar consumers. Requires cycle < length(lane).
  Trit lane_trit(std::size_t cycle, unsigned output, unsigned lane) const;

 private:
  unsigned outputs_ = 0;
  unsigned words_ = 0;
  std::size_t max_length_ = 0;
  std::vector<std::size_t> lengths_;
  std::vector<TritWord> data_;
};

/// CLS responses of a whole test set in word-major form (same lane
/// semantics as packed_cls_responses, different storage layout).
PackedResponseWords packed_cls_response_words(const Netlist& netlist,
                                              const std::vector<TritsSeq>& tests);
PackedResponseWords packed_cls_response_words(const Netlist& netlist,
                                              const std::vector<BitsSeq>& tests);

/// Transposes cycle `t` of tests[begin, begin+count) into `out`: lane b
/// reads tests[begin+b][t]; lanes past a test's end, and lanes >= count,
/// read `idle`. This is the chunked-iteration primitive shared by the batch
/// runner and the fault engine (which walks a test set one 64-lane chunk at
/// a time instead of packing the whole set).
void pack_cycle_inputs(const std::vector<TritsSeq>& tests, std::size_t begin,
                       std::size_t count, std::size_t t, Trit idle,
                       PackedTrits* out);

/// Runs every ternary input sequence from the all-X state, 64 sequences per
/// word. Lane i of the result agrees with ClsSimulator::run(tests[i]);
/// sequences may have different lengths. This is the fast path — a single
/// flat result allocation.
PackedResponses packed_cls_responses(const Netlist& netlist,
                                     const std::vector<TritsSeq>& tests);
PackedResponses packed_cls_responses(const Netlist& netlist,
                                     const std::vector<BitsSeq>& tests);

/// Convenience form of packed_cls_responses that materializes nested
/// per-lane output sequences.
std::vector<TritsSeq> packed_cls_run(const Netlist& netlist,
                                     const std::vector<TritsSeq>& tests);

/// Binary-sequence convenience overload (still all-X power-up — the form
/// used by CLS test evaluation).
std::vector<TritsSeq> packed_cls_run(const Netlist& netlist,
                                     const std::vector<BitsSeq>& tests);

/// Runs every Boolean input sequence from one shared definite latch state
/// and returns the Boolean output sequences. Agrees lane-for-lane with
/// BinarySimulator::run from that state.
std::vector<BitsSeq> packed_binary_run(const Netlist& netlist,
                                       const Bits& state,
                                       const std::vector<BitsSeq>& tests);

}  // namespace rtv
