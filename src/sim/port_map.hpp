#pragma once
// Dense indexing of netlist output ports for simulation value storage.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

/// Assigns every output port of every node slot a dense index so simulators
/// can keep per-port values in a flat array. Built once per netlist; the
/// netlist must not be structurally modified while the map is in use.
class PortMap {
 public:
  explicit PortMap(const Netlist& netlist);

  std::uint32_t index(PortRef port) const {
    return offsets_[port.node.value] + port.port;
  }

  /// Total number of indexed ports.
  std::uint32_t size() const { return total_; }

 private:
  std::vector<std::uint32_t> offsets_;
  std::uint32_t total_ = 0;
};

}  // namespace rtv
