#include "sim/exact_sim.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace rtv {

ExactTernarySimulator::ExactTernarySimulator(const Netlist& netlist,
                                             std::size_t state_cap)
    : netlist_(netlist), sim_(netlist), state_cap_(state_cap) {
  RTV_REQUIRE(num_latches() <= 63,
              "ExactTernarySimulator supports at most 63 latches");
  reset_all_powerup();
}

void ExactTernarySimulator::reset_all_powerup() {
  reset_from_ternary(Trits(num_latches(), Trit::kX));
}

void ExactTernarySimulator::reset_from_ternary(const Trits& state) {
  RTV_REQUIRE(state.size() == num_latches(), "state vector size mismatch");
  unsigned num_x = 0;
  std::uint64_t base = 0;
  std::vector<unsigned> x_positions;
  for (unsigned i = 0; i < state.size(); ++i) {
    if (state[i] == Trit::kX) {
      ++num_x;
      x_positions.push_back(i);
    } else if (state[i] == Trit::kOne) {
      base |= (1ULL << i);
    }
  }
  RTV_REQUIRE(num_x < 64 && pow2(num_x) <= state_cap_,
              "too many X latches for exact enumeration");
  std::vector<std::uint64_t> states;
  states.reserve(pow2(num_x));
  for (std::uint64_t c = 0; c < pow2(num_x); ++c) {
    std::uint64_t s = base;
    for (unsigned j = 0; j < num_x; ++j) {
      if (get_bit(c, j)) s |= (1ULL << x_positions[j]);
    }
    states.push_back(s);
  }
  reset_from_states(std::move(states));
}

void ExactTernarySimulator::reset_from_states(
    std::vector<std::uint64_t> states) {
  RTV_REQUIRE(!states.empty(), "state set must be non-empty");
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  RTV_REQUIRE(states.size() <= state_cap_, "state set exceeds cap");
  RTV_REQUIRE(states.back() < pow2(num_latches()) || num_latches() == 0,
              "packed state wider than the latch count");
  states_ = std::move(states);
}

Trits ExactTernarySimulator::step(const Bits& inputs) {
  const std::uint64_t packed_in = pack_bits(inputs);
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;
  std::vector<std::uint64_t> next;
  next.reserve(states_.size());
  for (const std::uint64_t s : states_) {
    std::uint64_t out = 0, ns = 0;
    sim_.eval_packed(s, packed_in, out, ns);
    ones |= out;
    zeros |= ~out & low_mask(num_outputs());
    next.push_back(ns);
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  states_ = std::move(next);

  Trits result(num_outputs());
  for (unsigned j = 0; j < num_outputs(); ++j) {
    const bool saw1 = get_bit(ones, j);
    const bool saw0 = get_bit(zeros, j);
    result[j] = (saw1 && saw0) ? Trit::kX : to_trit(saw1);
  }
  return result;
}

TritsSeq ExactTernarySimulator::run(const BitsSeq& inputs) {
  TritsSeq outputs;
  outputs.reserve(inputs.size());
  for (const Bits& in : inputs) outputs.push_back(step(in));
  return outputs;
}

Trits ExactTernarySimulator::state_abstraction() const {
  Trits result(num_latches(), Trit::kX);
  for (unsigned i = 0; i < num_latches(); ++i) {
    bool saw0 = false, saw1 = false;
    for (const std::uint64_t s : states_) {
      (get_bit(s, i) ? saw1 : saw0) = true;
      if (saw0 && saw1) break;
    }
    result[i] = (saw0 && saw1) ? Trit::kX : to_trit(saw1);
  }
  return result;
}

}  // namespace rtv
