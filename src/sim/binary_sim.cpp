#include "sim/binary_sim.hpp"

#include "sim/packed_sim.hpp"
#include "util/bits.hpp"

namespace rtv {

std::vector<BitsSeq> BinarySimulator::run_batch(
    const Netlist& netlist, const Bits& state,
    const std::vector<BitsSeq>& tests) {
  return packed_binary_run(netlist, state, tests);
}

BinarySimulator::BinarySimulator(const Netlist& netlist)
    : netlist_(netlist),
      ports_(netlist),
      topo_(combinational_topo_order(netlist)),
      io_pos_(netlist.num_slots(), 0),
      state_(netlist.latches().size(), 0),
      values_(ports_.size(), 0) {
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos_[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());
}

void BinarySimulator::set_state(const Bits& latch_values) {
  RTV_REQUIRE(latch_values.size() == state_.size(),
              "state vector size mismatch");
  state_ = latch_values;
}

Bits BinarySimulator::step(const Bits& inputs) {
  Bits outputs, next_state;
  eval_into(state_, inputs, outputs, next_state, values_);
  state_ = std::move(next_state);
  return outputs;
}

BitsSeq BinarySimulator::run(const BitsSeq& inputs) {
  BitsSeq outputs;
  outputs.reserve(inputs.size());
  for (const Bits& in : inputs) outputs.push_back(step(in));
  return outputs;
}

void BinarySimulator::eval(const Bits& state, const Bits& inputs,
                           Bits& outputs, Bits& next_state) const {
  eval_into(state, inputs, outputs, next_state, values_);
}

void BinarySimulator::eval_packed(std::uint64_t state, std::uint64_t inputs,
                                  std::uint64_t& outputs,
                                  std::uint64_t& next_state) const {
  const unsigned nl = num_latches();
  const unsigned ni = num_inputs();
  RTV_REQUIRE(nl <= 64 && ni <= 64, "eval_packed capacity exceeded");
  Bits out_bits, next_bits;
  eval_into(unpack_bits(state, nl), unpack_bits(inputs, ni), out_bits,
            next_bits, values_);
  outputs = pack_bits(out_bits);
  next_state = pack_bits(next_bits);
}

void BinarySimulator::eval_into(const Bits& state, const Bits& inputs,
                                Bits& outputs, Bits& next_state,
                                std::vector<std::uint8_t>& values) const {
  RTV_REQUIRE(state.size() == netlist_.latches().size(),
              "state vector size mismatch");
  RTV_REQUIRE(inputs.size() == netlist_.primary_inputs().size(),
              "input vector size mismatch");
  outputs.assign(netlist_.primary_outputs().size(), 0);
  next_state.assign(state.size(), 0);

  const auto value_of = [&](PortRef p) -> std::uint8_t {
    return values[ports_.index(p)];
  };

  for (const NodeId id : topo_) {
    const Node& n = netlist_.node(id);
    const std::uint32_t base = ports_.index(PortRef(id, 0));
    switch (n.kind) {
      case CellKind::kInput:
        values[base] = inputs[io_pos_[id.value]];
        break;
      case CellKind::kLatch:
        values[base] = state[io_pos_[id.value]];
        break;
      case CellKind::kOutput:
        outputs[io_pos_[id.value]] = value_of(n.fanin[0]);
        break;
      case CellKind::kConst0:
        values[base] = 0;
        break;
      case CellKind::kConst1:
        values[base] = 1;
        break;
      case CellKind::kBuf:
        values[base] = value_of(n.fanin[0]);
        break;
      case CellKind::kNot:
        values[base] = value_of(n.fanin[0]) ^ 1;
        break;
      case CellKind::kAnd:
      case CellKind::kNand: {
        std::uint8_t acc = 1;
        for (const PortRef& d : n.fanin) acc &= value_of(d);
        values[base] = (n.kind == CellKind::kNand) ? acc ^ 1 : acc;
        break;
      }
      case CellKind::kOr:
      case CellKind::kNor: {
        std::uint8_t acc = 0;
        for (const PortRef& d : n.fanin) acc |= value_of(d);
        values[base] = (n.kind == CellKind::kNor) ? acc ^ 1 : acc;
        break;
      }
      case CellKind::kXor:
      case CellKind::kXnor: {
        std::uint8_t acc = 0;
        for (const PortRef& d : n.fanin) acc ^= value_of(d);
        values[base] = (n.kind == CellKind::kXnor) ? acc ^ 1 : acc;
        break;
      }
      case CellKind::kMux: {
        const std::uint8_t s = value_of(n.fanin[0]);
        values[base] = s != 0 ? value_of(n.fanin[2]) : value_of(n.fanin[1]);
        break;
      }
      case CellKind::kJunc: {
        const std::uint8_t v = value_of(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) values[base + p] = v;
        break;
      }
      case CellKind::kTable: {
        std::uint64_t minterm = 0;
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          if (value_of(n.fanin[pin]) != 0) minterm |= (1ULL << pin);
        }
        const std::uint64_t row = netlist_.table(n.table).eval_row(minterm);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          values[base + p] = get_bit(row, p) ? 1 : 0;
        }
        break;
      }
    }
  }

  for (std::uint32_t i = 0; i < netlist_.latches().size(); ++i) {
    const Node& latch = netlist_.node(netlist_.latches()[i]);
    next_state[i] = values[ports_.index(latch.fanin[0])];
  }
}

}  // namespace rtv
