#pragma once
// Exact three-valued simulator — the paper's "sufficiently powerful
// simulator" (Section 2.1).
//
// For a given input sequence it reports, per cycle and per output:
//   1  iff every tracked power-up state outputs 1 at that cycle,
//   0  iff every tracked power-up state outputs 0,
//   X  otherwise (two power-up states disagree).
// Unlike the CLS it keeps full correlation information: it tracks the exact
// set of states the design could currently be in, so it can (for example)
// distinguish the paper's Figure-1 circuits D (0·0·1·0) and C (0·X·X·X).

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/binary_sim.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Default cap on the tracked state-set size (2^20 states).
inline constexpr std::size_t kDefaultExactStateCap = std::size_t{1} << 20;

class ExactTernarySimulator {
 public:
  /// The netlist needs <= 63 latches (states are packed into words); the
  /// initial enumeration additionally must respect `state_cap`.
  explicit ExactTernarySimulator(const Netlist& netlist,
                                 std::size_t state_cap = kDefaultExactStateCap);

  unsigned num_inputs() const { return sim_.num_inputs(); }
  unsigned num_outputs() const { return sim_.num_outputs(); }
  unsigned num_latches() const { return sim_.num_latches(); }

  /// Tracks all 2^L power-up states (requires 2^L <= state_cap).
  void reset_all_powerup();

  /// Tracks every Boolean completion of a ternary latch state.
  void reset_from_ternary(const Trits& state);

  /// Tracks an explicit set of packed states (duplicates removed).
  void reset_from_states(std::vector<std::uint64_t> states);

  /// The currently possible states (sorted, unique, packed little-endian in
  /// Netlist::latches() order).
  const std::vector<std::uint64_t>& current_states() const { return states_; }

  /// One clock cycle: aggregates outputs over all tracked states, then
  /// advances the tracked set through the transition function.
  Trits step(const Bits& inputs);

  /// Runs a whole input sequence.
  TritsSeq run(const BitsSeq& inputs);

  /// The per-latch ternary abstraction of the tracked set: latch i is 0/1 if
  /// all tracked states agree, X otherwise.
  Trits state_abstraction() const;

 private:
  const Netlist& netlist_;
  BinarySimulator sim_;
  std::size_t state_cap_;
  std::vector<std::uint64_t> states_;
};

}  // namespace rtv
