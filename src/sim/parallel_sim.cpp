#include "sim/parallel_sim.hpp"

#include "util/bits.hpp"

namespace rtv {

ParallelBinarySimulator::ParallelBinarySimulator(const Netlist& netlist,
                                                 unsigned lanes)
    : netlist_(netlist),
      ports_(netlist),
      topo_(combinational_topo_order(netlist)),
      io_pos_(netlist.num_slots(), 0),
      lanes_(lanes),
      words_(static_cast<unsigned>(words_for_bits(lanes))) {
  RTV_REQUIRE(lanes >= 1, "need at least one lane");
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos_[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());
  state_.assign(static_cast<std::size_t>(num_latches()) * words_, 0);
  inputs_.assign(static_cast<std::size_t>(num_inputs()) * words_, 0);
  outputs_.assign(static_cast<std::size_t>(num_outputs()) * words_, 0);
  values_.assign(static_cast<std::size_t>(ports_.size()) * words_, 0);
}

void ParallelBinarySimulator::set_state_bit(unsigned latch, unsigned lane,
                                            bool value) {
  RTV_REQUIRE(latch < num_latches() && lane < lanes_, "index out of range");
  Word& w = state_[static_cast<std::size_t>(latch) * words_ + lane / 64];
  w = set_bit(w, lane % 64, value);
}

bool ParallelBinarySimulator::state_bit(unsigned latch, unsigned lane) const {
  RTV_REQUIRE(latch < num_latches() && lane < lanes_, "index out of range");
  return get_bit(state_[static_cast<std::size_t>(latch) * words_ + lane / 64],
                 lane % 64);
}

void ParallelBinarySimulator::set_state_broadcast(const Bits& latch_values) {
  RTV_REQUIRE(latch_values.size() == num_latches(),
              "state vector size mismatch");
  for (unsigned l = 0; l < num_latches(); ++l) {
    const Word fill = latch_values[l] != 0 ? ~0ULL : 0ULL;
    for (unsigned w = 0; w < words_; ++w) {
      state_[static_cast<std::size_t>(l) * words_ + w] = fill;
    }
  }
}

Bits ParallelBinarySimulator::state_lane(unsigned lane) const {
  Bits out(num_latches());
  for (unsigned l = 0; l < num_latches(); ++l) {
    out[l] = state_bit(l, lane) ? 1 : 0;
  }
  return out;
}

void ParallelBinarySimulator::step_broadcast(const Bits& inputs) {
  RTV_REQUIRE(inputs.size() == num_inputs(), "input vector size mismatch");
  for (unsigned i = 0; i < num_inputs(); ++i) {
    const Word fill = inputs[i] != 0 ? ~0ULL : 0ULL;
    for (unsigned w = 0; w < words_; ++w) {
      inputs_[static_cast<std::size_t>(i) * words_ + w] = fill;
    }
  }
  eval_and_clock();
}

void ParallelBinarySimulator::step_packed(const std::vector<Word>& packed) {
  RTV_REQUIRE(packed.size() == inputs_.size(), "packed input size mismatch");
  inputs_ = packed;
  eval_and_clock();
}

bool ParallelBinarySimulator::output_bit(unsigned output, unsigned lane) const {
  RTV_REQUIRE(output < num_outputs() && lane < lanes_, "index out of range");
  return get_bit(
      outputs_[static_cast<std::size_t>(output) * words_ + lane / 64],
      lane % 64);
}

const ParallelBinarySimulator::Word* ParallelBinarySimulator::output_words(
    unsigned output) const {
  RTV_REQUIRE(output < num_outputs(), "output index out of range");
  return &outputs_[static_cast<std::size_t>(output) * words_];
}

void ParallelBinarySimulator::eval_and_clock() {
  const unsigned W = words_;
  Word* const vals = values_.data();
  const auto port_words = [&](PortRef p) -> Word* {
    return vals + static_cast<std::size_t>(ports_.index(p)) * W;
  };

  for (const NodeId id : topo_) {
    const Node& n = netlist_.node(id);
    Word* const out = vals + static_cast<std::size_t>(ports_.index(PortRef(id, 0))) * W;
    switch (n.kind) {
      case CellKind::kInput: {
        const Word* src = &inputs_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        for (unsigned w = 0; w < W; ++w) out[w] = src[w];
        break;
      }
      case CellKind::kLatch: {
        const Word* src = &state_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        for (unsigned w = 0; w < W; ++w) out[w] = src[w];
        break;
      }
      case CellKind::kOutput: {
        Word* dst = &outputs_[static_cast<std::size_t>(io_pos_[id.value]) * W];
        const Word* src = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) dst[w] = src[w];
        break;
      }
      case CellKind::kConst0:
        for (unsigned w = 0; w < W; ++w) out[w] = 0;
        break;
      case CellKind::kConst1:
        for (unsigned w = 0; w < W; ++w) out[w] = ~0ULL;
        break;
      case CellKind::kBuf: {
        const Word* a = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) out[w] = a[w];
        break;
      }
      case CellKind::kNot: {
        const Word* a = port_words(n.fanin[0]);
        for (unsigned w = 0; w < W; ++w) out[w] = ~a[w];
        break;
      }
      case CellKind::kAnd:
      case CellKind::kNand: {
        for (unsigned w = 0; w < W; ++w) out[w] = ~0ULL;
        for (const PortRef& d : n.fanin) {
          const Word* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] &= a[w];
        }
        if (n.kind == CellKind::kNand) {
          for (unsigned w = 0; w < W; ++w) out[w] = ~out[w];
        }
        break;
      }
      case CellKind::kOr:
      case CellKind::kNor: {
        for (unsigned w = 0; w < W; ++w) out[w] = 0;
        for (const PortRef& d : n.fanin) {
          const Word* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] |= a[w];
        }
        if (n.kind == CellKind::kNor) {
          for (unsigned w = 0; w < W; ++w) out[w] = ~out[w];
        }
        break;
      }
      case CellKind::kXor:
      case CellKind::kXnor: {
        for (unsigned w = 0; w < W; ++w) out[w] = 0;
        for (const PortRef& d : n.fanin) {
          const Word* a = port_words(d);
          for (unsigned w = 0; w < W; ++w) out[w] ^= a[w];
        }
        if (n.kind == CellKind::kXnor) {
          for (unsigned w = 0; w < W; ++w) out[w] = ~out[w];
        }
        break;
      }
      case CellKind::kMux: {
        const Word* s = port_words(n.fanin[0]);
        const Word* a = port_words(n.fanin[1]);
        const Word* b = port_words(n.fanin[2]);
        for (unsigned w = 0; w < W; ++w) {
          out[w] = (s[w] & b[w]) | (~s[w] & a[w]);
        }
        break;
      }
      case CellKind::kJunc: {
        const Word* a = port_words(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          Word* dst = vals + static_cast<std::size_t>(ports_.index(PortRef(id, p))) * W;
          for (unsigned w = 0; w < W; ++w) dst[w] = a[w];
        }
        break;
      }
      case CellKind::kTable: {
        // Minterm expansion: for each input combination x whose row has
        // output bit j set, OR in the AND of the (possibly complemented)
        // input words.
        const TruthTable& t = netlist_.table(n.table);
        const unsigned pins = n.num_pins();
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          Word* dst = vals + static_cast<std::size_t>(ports_.index(PortRef(id, p))) * W;
          for (unsigned w = 0; w < W; ++w) dst[w] = 0;
        }
        for (std::uint64_t x = 0; x < pow2(pins); ++x) {
          const std::uint64_t row = t.eval_row(x);
          if (row == 0) continue;
          for (unsigned w = 0; w < W; ++w) {
            Word term = ~0ULL;
            for (unsigned pin = 0; pin < pins; ++pin) {
              const Word v = port_words(n.fanin[pin])[w];
              term &= get_bit(x, pin) ? v : ~v;
            }
            if (term == 0) continue;
            for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
              if (get_bit(row, p)) {
                vals[static_cast<std::size_t>(ports_.index(PortRef(id, p))) * W + w] |= term;
              }
            }
          }
        }
        break;
      }
    }
  }

  for (std::uint32_t i = 0; i < num_latches(); ++i) {
    const Node& latch = netlist_.node(netlist_.latches()[i]);
    const Word* src = port_words(latch.fanin[0]);
    Word* dst = &state_[static_cast<std::size_t>(i) * W];
    for (unsigned w = 0; w < W; ++w) dst[w] = src[w];
  }
}

}  // namespace rtv
