#include "bdd/equivalence.hpp"

// Same GC/reorder discipline as symbolic.cpp: long-lived Refs ride in
// BddHandles, produced-then-consumed Refs are passed along with no
// allocating call in between, and inner allocations feeding an expression
// are hoisted into named locals (argument evaluation order is unspecified).

namespace rtv {

SymbolicImplication::SymbolicImplication(const Netlist& c, const Netlist& d,
                                         std::size_t node_limit,
                                         ResourceBudget* budget)
    : pair_(pair_designs(c, d)), budget_(budget) {
  RTV_REQUIRE(c.primary_outputs().size() == d.primary_outputs().size(),
              "implication requires equal primary output counts");
  machine_ =
      std::make_unique<SymbolicMachine>(pair_.netlist, node_limit, budget_);
  BddManager& m = machine_->manager();
  std::vector<unsigned> input_vars;
  for (unsigned j = 0; j < machine_->num_inputs(); ++j) {
    input_vars.push_back(machine_->input_var(j));
  }
  input_cube_.reset(&m, m.make_cube(input_vars));
  std::vector<unsigned> d_state_vars;
  for (unsigned i = 0; i < pair_.b_latches; ++i) {
    d_state_vars.push_back(
        machine_->state_var(static_cast<unsigned>(pair_.a_latches) + i));
  }
  d_state_cube_.reset(&m, m.make_cube(d_state_vars));
}

BddManager::Ref SymbolicImplication::forall_inputs(BddManager::Ref f) {
  return machine_->manager().forall_cube(f, input_cube_.get());
}

BddManager::Ref SymbolicImplication::equivalence_relation() {
  if (relation_.engaged()) return relation_.get();
  BddManager& m = machine_->manager();

  // E0: outputs agree for every input.
  BddHandle outputs_agree = m.protect(BddManager::kTrue);
  for (std::size_t j = 0; j < pair_.a_outputs; ++j) {
    const BddManager::Ref pair_eq =
        m.bdd_xnor(machine_->output_function(static_cast<unsigned>(j)),
                   machine_->output_function(
                       static_cast<unsigned>(pair_.a_outputs + j)));
    outputs_agree.reset(&m, m.bdd_and(outputs_agree.get(), pair_eq));
  }
  BddHandle relation = m.protect(forall_inputs(outputs_agree.get()));

  for (;;) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/fixpoint-iter");
    // Substitution s_i -> delta_i(s, x) for the inductive step (inputs and
    // next-state variables map to themselves; E_k has no such vars anyway).
    // Rebuilt each round: the raw Refs go stale whenever an iteration
    // collects or sifts.
    std::vector<BddManager::Ref> substitution(m.num_vars());
    for (unsigned v = 0; v < m.num_vars(); ++v) substitution[v] = m.var(v);
    for (unsigned i = 0; i < machine_->num_latches(); ++i) {
      substitution[machine_->state_var(i)] = machine_->next_function(i);
    }
    const BddManager::Ref composed = m.compose(relation.get(), substitution);
    const BddManager::Ref step = forall_inputs(composed);
    const BddManager::Ref refined = m.bdd_and(relation.get(), step);
    if (refined == relation.get()) break;
    relation.reset(&m, refined);
  }
  relation_ = relation;
  return relation_.get();
}

bool SymbolicImplication::all_covered(BddManager::Ref c_states) {
  BddManager& m = machine_->manager();
  const BddHandle guard = m.protect(c_states);
  const BddManager::Ref relation = equivalence_relation();
  const BddHandle has_match =
      m.protect(m.exists_cube(relation, d_state_cube_.get()));
  const BddManager::Ref no_match = m.bdd_not(has_match.get());
  const BddManager::Ref uncovered = m.bdd_and(guard.get(), no_match);
  return uncovered == BddManager::kFalse;
}

bool SymbolicImplication::implies() { return all_covered(BddManager::kTrue); }

int SymbolicImplication::min_delay_for_implication(unsigned max_cycles) {
  BddManager& m = machine_->manager();
  // The n-step image of all states in the paired machine factorizes as
  // delayed_C(s) ∧ delayed_D(t); project out the D component.
  BddHandle current = m.protect(BddManager::kTrue);
  for (unsigned n = 0; n <= max_cycles; ++n) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/delay-step");
    const BddManager::Ref c_part =
        m.exists_cube(current.get(), d_state_cube_.get());
    if (all_covered(c_part)) return static_cast<int>(n);
    const BddManager::Ref next = machine_->image(current.get());
    if (next == current.get()) break;  // fixpoint: no further delay can help
    current.reset(&m, next);
  }
  return -1;
}

}  // namespace rtv
