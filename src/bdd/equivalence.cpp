#include "bdd/equivalence.hpp"

namespace rtv {

SymbolicImplication::SymbolicImplication(const Netlist& c, const Netlist& d,
                                         std::size_t node_limit,
                                         ResourceBudget* budget)
    : pair_(pair_designs(c, d)), budget_(budget) {
  RTV_REQUIRE(c.primary_outputs().size() == d.primary_outputs().size(),
              "implication requires equal primary output counts");
  machine_ =
      std::make_unique<SymbolicMachine>(pair_.netlist, node_limit, budget_);
  BddManager& m = machine_->manager();
  std::vector<unsigned> input_vars;
  for (unsigned j = 0; j < machine_->num_inputs(); ++j) {
    input_vars.push_back(machine_->input_var(j));
  }
  input_cube_ = m.make_cube(input_vars);
  std::vector<unsigned> d_state_vars;
  for (unsigned i = 0; i < pair_.b_latches; ++i) {
    d_state_vars.push_back(
        machine_->state_var(static_cast<unsigned>(pair_.a_latches) + i));
  }
  d_state_cube_ = m.make_cube(d_state_vars);
}

BddManager::Ref SymbolicImplication::forall_inputs(BddManager::Ref f) {
  return machine_->manager().forall_cube(f, input_cube_);
}

BddManager::Ref SymbolicImplication::equivalence_relation() {
  if (relation_computed_) return relation_;
  BddManager& m = machine_->manager();

  // E0: outputs agree for every input.
  BddManager::Ref outputs_agree = BddManager::kTrue;
  for (std::size_t j = 0; j < pair_.a_outputs; ++j) {
    outputs_agree = m.bdd_and(
        outputs_agree,
        m.bdd_xnor(machine_->output_function(static_cast<unsigned>(j)),
                   machine_->output_function(
                       static_cast<unsigned>(pair_.a_outputs + j))));
  }
  BddManager::Ref relation = forall_inputs(outputs_agree);

  // Substitution s_i -> delta_i(s, x) for the inductive step (inputs and
  // next-state variables map to themselves; E_k has no such vars anyway).
  std::vector<BddManager::Ref> substitution(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) substitution[v] = m.var(v);
  for (unsigned i = 0; i < machine_->num_latches(); ++i) {
    substitution[machine_->state_var(i)] = machine_->next_function(i);
  }

  for (;;) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/fixpoint-iter");
    const BddManager::Ref step =
        forall_inputs(m.compose(relation, substitution));
    const BddManager::Ref refined = m.bdd_and(relation, step);
    if (refined == relation) break;
    relation = refined;
  }
  relation_ = relation;
  relation_computed_ = true;
  return relation_;
}

bool SymbolicImplication::all_covered(BddManager::Ref c_states) {
  BddManager& m = machine_->manager();
  const BddManager::Ref has_match =
      m.exists_cube(equivalence_relation(), d_state_cube_);
  const BddManager::Ref uncovered =
      m.bdd_and(c_states, m.bdd_not(has_match));
  return uncovered == BddManager::kFalse;
}

bool SymbolicImplication::implies() { return all_covered(BddManager::kTrue); }

int SymbolicImplication::min_delay_for_implication(unsigned max_cycles) {
  BddManager& m = machine_->manager();
  // The n-step image of all states in the paired machine factorizes as
  // delayed_C(s) ∧ delayed_D(t); project out the D component.
  BddManager::Ref current = BddManager::kTrue;
  for (unsigned n = 0; n <= max_cycles; ++n) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/delay-step");
    const BddManager::Ref c_part = m.exists_cube(current, d_state_cube_);
    if (all_covered(c_part)) return static_cast<int>(n);
    const BddManager::Ref next = machine_->image(current);
    if (next == current) break;  // fixpoint: no further delay can help
    current = next;
  }
  return -1;
}

}  // namespace rtv
