#pragma once
// Symbolic (BDD-based) analysis of netlists: next-state/output functions,
// image computation, reachability, delayed-design state sets and sequential
// equivalence from known initial states — the [Pix92]-era machinery that
// scales past explicit 2^L state enumeration.
//
// Variable order: current-state bit i at 2i, next-state bit i at 2i+1
// (interleaved, so the transition relation stays small), primary input j at
// 2L + j. Each (2i, 2i+1) pair is pinned as one sifting group, so dynamic
// reordering can move pairs freely without breaking the interleaving the
// partitioned image path's monotone rename depends on.
//
// The transition relation is kept PARTITIONED: the per-latch conjuncts
// s'ᵢ ↔ fᵢ(s, x) are clustered under a node-size cap and image computation
// runs a chain of fused and-exists steps over the clusters, quantifying
// each state/input variable at the first cluster after which it is dead
// (early quantification). The monolithic T(s, x, s') is still available —
// lazily built — as the reference path the partitioned result is
// cross-checked against in the tests.
//
// Every long-lived BDD root (cone functions, clusters, cubes, the lazy T)
// is held through a BddHandle, so the machine is safe to run with garbage
// collection and dynamic reordering enabled on its manager. Refs returned
// by the query methods below follow the manager's contract: stable until
// the next potentially-allocating call, protect to hold longer.

#include <memory>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Default cap on the BDD node size of one transition-relation cluster.
/// Small clusters quantify early but repeat work; huge clusters degenerate
/// to the monolithic product. ~2k nodes is the sweet spot on the bench
/// workloads (see docs/performance.md).
inline constexpr std::size_t kDefaultClusterNodeCap = 2048;

class SymbolicMachine {
 public:
  /// Builds the machine (combinational cone BDDs + partitioned transition
  /// relation). With a budget attached (non-owning, may be nullptr) the
  /// construction and every fixpoint below are cooperatively governed: node
  /// allocation, table-cell minterm expansion and each image iteration
  /// probe the budget and throw ResourceExhausted when it is blown —
  /// callers that own the budget catch at the phase boundary and degrade.
  /// `reorder`/`gc_enabled` configure the manager before any cone is built,
  /// so an unlucky initial order can already be sifted away mid-construction.
  explicit SymbolicMachine(const Netlist& netlist,
                           std::size_t node_limit = kDefaultBddNodeLimit,
                           ResourceBudget* budget = nullptr,
                           std::size_t cluster_node_cap =
                               kDefaultClusterNodeCap,
                           const ReorderOptions& reorder = {},
                           bool gc_enabled = false);

  BddManager& manager() { return *mgr_; }
  unsigned num_latches() const { return num_latches_; }
  unsigned num_inputs() const { return num_inputs_; }
  unsigned num_outputs() const { return num_outputs_; }

  unsigned state_var(unsigned i) const { return 2 * i; }
  unsigned next_var(unsigned i) const { return 2 * i + 1; }
  unsigned input_var(unsigned j) const { return 2 * num_latches_ + j; }

  /// Next-state function of latch i over (state, input) variables.
  BddManager::Ref next_function(unsigned i) const {
    return next_fn_[i].get();
  }
  /// Output function j over (state, input) variables.
  BddManager::Ref output_function(unsigned j) const {
    return out_fn_[j].get();
  }

  /// Monolithic transition relation T(s, x, s') = ∧ᵢ (s'ᵢ ↔ fᵢ(s, x)).
  /// Built lazily (balanced conjunction of the partition's clusters) on
  /// first use: the partitioned image path never needs it.
  BddManager::Ref transition();

  /// One cluster of the partitioned transition relation: the conjunction
  /// of a consecutive run of per-latch conjuncts, plus the cube of
  /// state/input variables scheduled for quantification at this cluster
  /// (each variable is quantified at the LAST cluster whose support
  /// contains it — after that it is dead).
  struct TransitionCluster {
    BddHandle relation;
    BddHandle quantify_cube;
    std::vector<unsigned> latches;  ///< member latch indices (introspection)
  };
  const std::vector<TransitionCluster>& partition() const {
    return partition_;
  }

  /// Characteristic function of a single state (over state variables).
  BddManager::Ref state_cube(const Bits& state);
  /// All 2^L states.
  BddManager::Ref all_states() { return BddManager::kTrue; }

  /// Image: states reachable in exactly one step from `states` under some
  /// input (result over state variables). Drives the and-exists chain over
  /// the partition with early quantification.
  BddManager::Ref image(BddManager::Ref states);
  /// Reference path: conjoin the monolithic T, then quantify. Must agree
  /// with image() node-for-node (same manager, canonical BDDs).
  BddManager::Ref image_monolithic(BddManager::Ref states);

  /// Least fixpoint of image from `init` (init included).
  BddManager::Ref reachable(BddManager::Ref init);
  /// Same fixpoint over the monolithic reference image (for cross-checks
  /// and the bench's partitioned-vs-monolithic comparison).
  BddManager::Ref reachable_monolithic(BddManager::Ref init);

  /// The paper's delayed-design set: the n-fold image of ALL states
  /// (Section 3.4), computed symbolically.
  BddManager::Ref states_after_delay(unsigned cycles);

  /// Number of states in a state set (exact for < 2^53).
  double count_states(BddManager::Ref states);

 private:
  void build_partition(std::size_t cluster_node_cap);
  BddManager::Ref fixpoint_from(BddManager::Ref init, bool monolithic);

  std::unique_ptr<BddManager> mgr_;
  ResourceBudget* budget_ = nullptr;
  unsigned num_latches_;
  unsigned num_inputs_;
  unsigned num_outputs_;
  std::vector<BddHandle> next_fn_;
  std::vector<BddHandle> out_fn_;
  BddHandle transition_;  ///< lazy; disengaged = unbuilt
  std::vector<TransitionCluster> partition_;
  /// Quantifiable (state/input) vars in no cluster's support: quantified
  /// away from the source set before the and-exists chain starts.
  BddHandle pre_quantify_cube_;
  std::vector<unsigned> quantify_sx_;   // state + input vars (monolithic)
  std::vector<unsigned> rename_ns_;     // next-state -> state map
};

/// Sequential equivalence from known initial states, proven by symbolic
/// reachability on the miter (neq unreachable). Returns true iff the two
/// designs produce identical outputs on every input sequence when started
/// from state_a / state_b respectively.
bool symbolically_equivalent_from(const Netlist& a, const Bits& state_a,
                                  const Netlist& b, const Bits& state_b,
                                  std::size_t node_limit =
                                      kDefaultBddNodeLimit);

/// The paper's "sufficiently powerful simulator" (Section 2.1) in symbolic
/// form: each latch value is kept as a BDD over the *initial-state*
/// variables; an output at cycle t is 0/1 iff its BDD is constant over all
/// power-up completions, X otherwise. Functionally identical to
/// ExactTernarySimulator but scales by BDD size instead of 2^L.
class SymbolicExactSimulator {
 public:
  explicit SymbolicExactSimulator(const Netlist& netlist,
                                  std::size_t node_limit =
                                      kDefaultBddNodeLimit);

  unsigned num_inputs() const { return machine_.num_inputs(); }
  unsigned num_outputs() const { return machine_.num_outputs(); }
  unsigned num_latches() const { return machine_.num_latches(); }

  /// Restarts from all power-up states (each latch = its own variable).
  void reset_all_powerup();

  /// Restarts from the completions of a ternary state (X latches free).
  void reset_from_ternary(const Trits& state);

  /// One clock cycle with definite inputs; returns the aggregated ternary
  /// outputs (0/1 iff definite over every tracked power-up state).
  Trits step(const Bits& inputs);
  TritsSeq run(const BitsSeq& inputs);

  /// Per-latch ternary abstraction of the current symbolic state.
  Trits state_abstraction() const;

 private:
  SymbolicMachine machine_;
  std::vector<BddHandle> state_fn_;  ///< per latch, over state vars
  /// Reused substitution vector for step(): next-state slots stay identity
  /// forever; state/input slots are overwritten each cycle before use
  /// (hoisted out of step — it was rebuilt from scratch every cycle).
  std::vector<BddManager::Ref> substitution_;
};

}  // namespace rtv
