#include "bdd/cls_bdd.hpp"

#include <sstream>

#include "aig/cls_encode.hpp"
#include "bdd/symbolic.hpp"
#include "netlist/miter.hpp"

namespace rtv {

namespace {

using Ref = BddManager::Ref;

/// Walks the onion rings backward from a bad state at ring `k`, picking a
/// concrete predecessor chain and reading the dual-rail input assignment of
/// every step. rings[i] is the frontier first reached at step i.
TritsSeq extract_counterexample(SymbolicMachine& machine,
                                const std::vector<BddHandle>& rings,
                                unsigned k, Ref bad_at_k,
                                std::size_t original_inputs) {
  BddManager& mgr = machine.manager();
  const unsigned latches = machine.num_latches();

  const auto input_trits = [&](const std::vector<bool>& model) {
    Bits rails(2 * original_inputs, 0);
    for (std::size_t j = 0; j < 2 * original_inputs; ++j) {
      rails[j] = model[machine.input_var(static_cast<unsigned>(j))] ? 1 : 0;
    }
    return decode_trits(rails);
  };
  const auto state_bits = [&](const std::vector<bool>& model) {
    Bits state(latches, 0);
    for (unsigned i = 0; i < latches; ++i) {
      state[i] = model[machine.state_var(i)] ? 1 : 0;
    }
    return state;
  };

  TritsSeq cex(k + 1);
  std::vector<bool> model = mgr.pick_model(bad_at_k);
  cex[k] = input_trits(model);
  Bits successor = state_bits(model);

  for (unsigned t = k; t-- > 0;) {
    // Predecessor constraint: in ring t, and every latch's next-state
    // function matches the chosen successor bit. Conjuncts ride in handles:
    // each bdd_not may collect/sift, invalidating the refs gathered so far.
    std::vector<BddHandle> conjuncts;
    conjuncts.reserve(latches + 1);
    conjuncts.push_back(rings[t]);
    for (unsigned i = 0; i < latches; ++i) {
      const Ref f = machine.next_function(i);
      conjuncts.push_back(
          mgr.protect(successor[i] != 0 ? f : mgr.bdd_not(f)));
    }
    std::vector<Ref> raw;
    raw.reserve(conjuncts.size());
    for (const BddHandle& h : conjuncts) raw.push_back(h.get());
    const Ref pred = mgr.bdd_and_many(std::move(raw));
    RTV_CHECK_MSG(pred != BddManager::kFalse,
                  "backward cex walk lost the predecessor ring");
    model = mgr.pick_model(pred);
    cex[t] = input_trits(model);
    successor = state_bits(model);
  }
  return cex;
}

}  // namespace

BddClsOutcome bdd_cls_equivalence(const Netlist& a, const Netlist& b,
                                  const BddEquivOptions& options,
                                  ResourceBudget* budget) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "designs differ in primary input count");
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size(),
              "designs differ in primary output count");

  BddClsOutcome outcome;

  // The symbolic machine carries a hard 256-variable cap per section
  // (state, inputs). Dual-rail encoding doubles and the miter concatenates
  // both designs, so a large-but-legitimate query can overflow it; that is
  // an engine limitation, not a caller error — report exhaustion (so a
  // portfolio run falls through to SAT) instead of throwing.
  const std::size_t miter_latches = 2 * (a.latches().size() + b.latches().size());
  const std::size_t miter_inputs = 2 * a.primary_inputs().size();
  if (miter_latches > 256 || miter_inputs > 256) {
    outcome.equivalent = true;
    outcome.verdict = Verdict::kExhausted;
    std::ostringstream os;
    os << "design exceeds BDD engine capacity (" << miter_latches
       << " dual-rail miter latches, " << miter_inputs
       << " dual-rail inputs; cap 256 each)";
    outcome.note = os.str();
    return outcome;
  }

  try {
    const ClsEncoding enc_a = cls_encode(a);
    const ClsEncoding enc_b = cls_encode(b);
    const Miter miter = build_miter(enc_a.netlist, enc_b.netlist);

    Bits init = enc_a.all_x_state();
    const Bits init_b = enc_b.all_x_state();
    init.insert(init.end(), init_b.begin(), init_b.end());

    SymbolicMachine machine(miter.netlist, options.node_limit, budget,
                            kDefaultClusterNodeCap, options.reorder,
                            options.gc);
    BddManager& mgr = machine.manager();
    const auto finish = [&]() {
      outcome.bdd_nodes = mgr.num_nodes();
      outcome.engine = mgr.stats();
    };

    std::vector<BddHandle> rings;
    rings.push_back(mgr.protect(machine.state_cube(init)));
    BddHandle total = rings.back();

    for (unsigned k = 0;; ++k) {
      if (budget != nullptr) budget->checkpoint_or_throw("bdd/cls-ring");
      // neq (output 0) is re-read each round: the handle inside the machine
      // tracks it across collections, a raw copy here would not.
      const BddHandle bad = mgr.protect(
          mgr.bdd_and(rings[k].get(), machine.output_function(0)));
      if (bad.get() != BddManager::kFalse) {
        outcome.equivalent = false;
        outcome.verdict = Verdict::kProven;
        outcome.iterations = k;
        outcome.counterexample = extract_counterexample(
            machine, rings, k, bad.get(), a.primary_inputs().size());
        std::ostringstream os;
        os << "symbolic reachability found a distinguishing sequence at "
              "depth "
           << k;
        outcome.note = os.str();
        finish();
        return outcome;
      }
      const BddHandle next = mgr.protect(machine.image(rings[k].get()));
      const Ref not_total = mgr.bdd_not(total.get());
      const BddHandle frontier =
          mgr.protect(mgr.bdd_and(next.get(), not_total));
      if (frontier.get() == BddManager::kFalse) {
        outcome.equivalent = true;
        outcome.verdict = Verdict::kProven;
        outcome.iterations = k + 1;
        std::ostringstream os;
        os << "reachability fixpoint after " << (k + 1)
           << " images; neq unreachable";
        outcome.note = os.str();
        finish();
        return outcome;
      }
      if (options.max_iterations != 0 && k + 1 >= options.max_iterations) {
        outcome.equivalent = true;
        outcome.verdict = Verdict::kBounded;
        outcome.iterations = k + 1;
        std::ostringstream os;
        os << "no difference within " << (k + 1)
           << " images (iteration cap hit before the fixpoint)";
        outcome.note = os.str();
        finish();
        return outcome;
      }
      total.reset(&mgr, mgr.bdd_or(total.get(), frontier.get()));
      rings.push_back(frontier);
    }
  } catch (const ResourceExhausted& e) {
    outcome.equivalent = true;
    outcome.verdict = Verdict::kExhausted;
    outcome.note = std::string("budget exhausted: ") + e.what();
    return outcome;
  } catch (const CapacityError& e) {
    outcome.equivalent = true;
    outcome.verdict = Verdict::kExhausted;
    outcome.note = std::string("BDD node cap: ") + e.what();
    return outcome;
  }
}

}  // namespace rtv
