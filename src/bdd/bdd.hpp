#pragma once
// A reduced ordered binary decision diagram (ROBDD) package — the symbolic
// engine of the paper's verification era ([Pix92]'s sequential hardware
// equivalence and [PSAB94]'s safe-replacement checking were BDD-based).
// Hash-consed unique table, memoized ITE, existential quantification with a
// cube API, a fused and-exists relational product, monotone variable
// renaming and model counting: enough to run symbolic reachability on
// netlists (see bdd/symbolic.hpp) without explicit 2^L state enumeration.
//
// Performance layout (the hot path of every image computation):
//   * The unique table is open-addressed with linear probing over a
//     power-of-two array of node indices — probes walk consecutive 4-byte
//     slots, so a miss costs one cache line instead of a chain of
//     std::unordered_map buckets.
//   * All recursive operators (ITE, exists, and-exists) share one
//     fixed-size lossy operation cache, CUDD-style: a hashed slot is simply
//     overwritten on collision. Losing an entry only costs recomputation —
//     results stay canonical because the unique table is exact.
//   * and_exists(f, g, cube) computes ∃cube. f ∧ g in one recursion and
//     never materialises the full conjunction — the workhorse behind
//     partitioned image computation in SymbolicMachine.
//
// Design notes: no complement edges and no garbage collection — nodes are
// arena-allocated and live for the manager's lifetime, with a hard
// node_limit guard (CapacityError) instead of reclamation. This keeps the
// invariants tiny, and the experiment workloads comfortably fit.

#include <cstdint>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"

namespace rtv {

class BddManager {
 public:
  /// Node handle. kFalse/kTrue are the terminals.
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// op_cache_entries = 0 lets the operation cache grow adaptively with the
  /// node count (the default); a nonzero value pins it to that many slots
  /// (rounded up to a power of two) — tests use tiny pinned caches to force
  /// collisions and prove the lossy policy is correctness-neutral.
  explicit BddManager(unsigned num_vars,
                      std::size_t node_limit = kDefaultBddNodeLimit,
                      std::size_t op_cache_entries = 0);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Attaches a cooperative resource budget (non-owning; may be nullptr).
  /// Node allocation then probes the budget's deadline/cancellation every
  /// few hundred nodes and honours its (possibly tighter) bdd_node_limit,
  /// throwing ResourceExhausted — which governed entry points catch and
  /// degrade on — instead of CapacityError.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }
  ResourceBudget* budget() const { return budget_; }

  /// The function of variable v / its complement.
  Ref var(unsigned v);
  Ref nvar(unsigned v);

  /// Shannon if-then-else — the universal connective.
  Ref ite(Ref f, Ref g, Ref h);

  Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }
  Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref bdd_xor(Ref f, Ref g) { return ite(f, bdd_not(g), g); }
  Ref bdd_xnor(Ref f, Ref g) { return ite(f, g, bdd_not(g)); }
  Ref bdd_implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  /// Wide-operand connectives by balanced tree reduction: combining
  /// neighbours pairwise keeps intermediate BDDs small and cache hits high,
  /// where a left fold grows one giant accumulator. Empty input yields the
  /// operation's identity (kTrue for AND, kFalse for OR/XOR).
  Ref bdd_and_many(std::vector<Ref> ops);
  Ref bdd_or_many(std::vector<Ref> ops);
  Ref bdd_xor_many(std::vector<Ref> ops);

  /// The positive cube v0 ∧ v1 ∧ ... of a variable set (duplicates fine,
  /// order irrelevant). Cubes are how quantifier sets are passed to the
  /// recursive operators: walking a cube costs one pointer chase per level
  /// instead of a num_vars-sized lookup table per call.
  Ref make_cube(const std::vector<unsigned>& vars);

  /// Existential quantification over a set of variables.
  Ref exists(Ref f, const std::vector<unsigned>& vars);
  /// Same, with the set pre-built by make_cube (cube must be a positive
  /// cube; cheap to reuse across many calls).
  Ref exists_cube(Ref f, Ref cube);

  /// Fused relational product ∃cube. f ∧ g in a single recursion — the
  /// conjunction is never materialised, quantified variables disappear the
  /// moment both cofactor pairs are combined, and an OR branch that hits
  /// kTrue short-circuits its sibling entirely.
  Ref and_exists(Ref f, Ref g, Ref cube);
  Ref and_exists(Ref f, Ref g, const std::vector<unsigned>& vars);

  /// Variable renaming v -> map[v] (identity where map[v] == v). The
  /// mapping must be strictly monotone on the support of f and the target
  /// variables must not occur in f outside the mapping's image — both are
  /// checked; violations throw InvalidArgument.
  Ref rename(Ref f, const std::vector<unsigned>& map);

  /// Simultaneous functional composition: substitutes every variable v in
  /// f by substitution[v] (use var(v) for identity).
  Ref compose(Ref f, const std::vector<Ref>& substitution);

  /// Universal quantification (dual of exists).
  Ref forall(Ref f, const std::vector<unsigned>& vars) {
    return bdd_not(exists(bdd_not(f), vars));
  }
  Ref forall_cube(Ref f, Ref cube) {
    return bdd_not(exists_cube(bdd_not(f), cube));
  }

  /// Evaluates under a complete assignment (assignment[v] = value of v).
  bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over variables [0, num_vars).
  double count_sat(Ref f) const;

  /// Some satisfying assignment (lexicographically smallest by var order);
  /// f must not be kFalse.
  std::vector<bool> pick_model(Ref f) const;

  /// Variables in the support of f, ascending.
  std::vector<unsigned> support(Ref f) const;

  /// BDD node count of a single function (reachable nodes incl terminals).
  std::size_t size(Ref f) const;

  /// Operation-cache observability (hit rates drive cache sizing; the
  /// benches report them).
  struct OpCacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t overwrites = 0;  ///< stores that evicted a live entry
  };
  const OpCacheStats& op_cache_stats() const { return op_stats_; }
  std::size_t op_cache_entries() const { return ops_.size(); }
  std::size_t unique_table_entries() const { return table_.size(); }

 private:
  struct Node {
    unsigned var;
    Ref lo;
    Ref hi;
  };
  /// Which recursive operator owns a cache entry. kFreeSlot doubles as the
  /// empty marker so a zeroed table is all-free.
  enum OpTag : std::uint32_t {
    kFreeSlot = 0,
    kOpIte,
    kOpExists,
    kOpAndExists,
  };
  struct OpEntry {
    Ref a = 0;
    Ref b = 0;
    Ref c = 0;
    std::uint32_t tag = kFreeSlot;
    Ref result = 0;
  };

  unsigned top_var(Ref f) const {
    return f <= kTrue ? num_vars_ : nodes_[f].var;
  }
  Ref cofactor(Ref f, unsigned v, bool value) const;
  Ref find_or_add(unsigned var, Ref lo, Ref hi);

  void grow_unique_table();
  void maybe_grow_op_cache();
  std::size_t op_slot(std::uint32_t tag, Ref a, Ref b, Ref c) const;
  bool op_find(std::uint32_t tag, Ref a, Ref b, Ref c, Ref* result);
  void op_store(std::uint32_t tag, Ref a, Ref b, Ref c, Ref result);

  template <typename Op>
  Ref balanced_reduce(std::vector<Ref>& ops, Ref identity, Op&& op);

  unsigned num_vars_;
  std::size_t node_limit_;
  ResourceBudget* budget_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Ref> var_refs_;

  /// Open-addressed unique table: power-of-two array of node indices
  /// (kEmptySlot = free), linear probing, resized at 3/4 load. Keys live in
  /// nodes_ — a probe compares 12 contiguous bytes, no separate key copies.
  static constexpr Ref kEmptySlot = 0xFFFFFFFFu;
  std::vector<Ref> table_;
  std::size_t table_used_ = 0;

  /// Lossy operation cache shared by ITE / exists / and-exists.
  std::vector<OpEntry> ops_;
  bool ops_size_pinned_ = false;
  OpCacheStats op_stats_;
};

}  // namespace rtv
