#pragma once
// A reduced ordered binary decision diagram (ROBDD) package — the symbolic
// engine of the paper's verification era ([Pix92]'s sequential hardware
// equivalence and [PSAB94]'s safe-replacement checking were BDD-based).
// Hash-consed unique table, memoized ITE, existential quantification with a
// cube API, a fused and-exists relational product, monotone variable
// renaming and model counting: enough to run symbolic reachability on
// netlists (see bdd/symbolic.hpp) without explicit 2^L state enumeration.
//
// Performance layout (the hot path of every image computation):
//   * The unique table is open-addressed with linear probing over a
//     power-of-two array of node indices — probes walk consecutive 4-byte
//     slots, so a miss costs one cache line instead of a chain of
//     std::unordered_map buckets.
//   * All recursive operators (ITE, exists, and-exists) share one
//     fixed-size lossy operation cache, CUDD-style: a hashed slot is simply
//     overwritten on collision. Losing an entry only costs recomputation —
//     results stay canonical because the unique table is exact.
//   * and_exists(f, g, cube) computes ∃cube. f ∧ g in one recursion and
//     never materialises the full conjunction — the workhorse behind
//     partitioned image computation in SymbolicMachine.
//
// Design notes: no complement edges, but the engine reclaims and reorders.
//   * Garbage collection is mark-sweep over externally protected roots
//     (BddHandle), compacting nodes_ and rebuilding the unique table; the
//     lossy op cache is cleared (and an adaptively grown cache shrunk back)
//     because its keys are raw Refs. GC runs only at operation entry — never
//     mid-recursion — so internal temporaries on the C++ stack are safe.
//   * Dynamic variable reordering is Rudell-style sifting: variables live at
//     *levels* (var2level/level2var indirection), the primitive is an
//     in-place adjacent-level swap that preserves every live Ref's identity,
//     and each variable (or pinned group) is sifted to its best level under
//     a growth-factor abort.
//
// The Ref contract with reclamation on: a raw Ref is only stable until the
// next potentially-allocating call. Any Ref held across such a call must be
// protected in a BddHandle, which GC remaps in place; unprotected Refs may
// be collected (GC) — terminals and bare variables (var_refs) are permanent
// and never move. With GC and reordering off (the default), Refs are stable
// for the manager's lifetime exactly as before, with the hard node_limit
// guard (CapacityError) as the only backstop.

#include <cstdint>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"

namespace rtv {

class BddManager;

/// When sifting runs.
enum class ReorderMode {
  kOff,         ///< only explicit reorder() calls sift
  kOnPressure,  ///< sift automatically when the table outgrows its trigger
};

/// Dynamic-reordering policy knobs (see BddManager::set_reorder_options).
struct ReorderOptions {
  ReorderMode mode = ReorderMode::kOff;
  /// First automatic trigger (live nodes); after each reorder the next
  /// trigger is 2× the post-reorder live size (never below this floor).
  std::size_t trigger_nodes = std::size_t{1} << 14;
  /// A variable stops sifting in a direction once the table exceeds
  /// best_size × max_growth, CUDD's classic abort heuristic.
  double max_growth = 1.2;
};

/// RAII protection of one BDD root. A live handle keeps its node (and the
/// cone under it) out of garbage collection, and GC/reordering remap the
/// handle in place — get() always returns the current Ref for the protected
/// function. Copyable (protects again) and movable (transfers the slot).
class BddHandle {
 public:
  BddHandle() = default;
  BddHandle(BddManager* mgr, std::uint32_t ref);
  BddHandle(const BddHandle& other);
  BddHandle(BddHandle&& other) noexcept;
  BddHandle& operator=(const BddHandle& other);
  BddHandle& operator=(BddHandle&& other) noexcept;
  ~BddHandle();

  /// The protected function's current Ref (remapped across GCs).
  std::uint32_t get() const;
  bool engaged() const { return mgr_ != nullptr; }
  BddManager* manager() const { return mgr_; }

  void reset();
  void reset(BddManager* mgr, std::uint32_t ref);

 private:
  BddManager* mgr_ = nullptr;
  std::uint32_t slot_ = 0;
};

class BddManager {
 public:
  /// Node handle. kFalse/kTrue are the terminals.
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// op_cache_entries = 0 lets the operation cache grow adaptively with the
  /// node count (the default); a nonzero value pins it to that many slots
  /// (rounded up to a power of two) — tests use tiny pinned caches to force
  /// collisions and prove the lossy policy is correctness-neutral.
  explicit BddManager(unsigned num_vars,
                      std::size_t node_limit = kDefaultBddNodeLimit,
                      std::size_t op_cache_entries = 0);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Attaches a cooperative resource budget (non-owning; may be nullptr).
  /// Node allocation then probes the budget's deadline/cancellation every
  /// few hundred nodes and honours its (possibly tighter) bdd_node_limit,
  /// throwing ResourceExhausted — which governed entry points catch and
  /// degrade on — instead of CapacityError. GC and sifting checkpoint the
  /// same budget ("bdd/gc" / "bdd/reorder" sites) at table-consistent
  /// boundaries, so exhaustion mid-collection or mid-sift unwinds cleanly.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }
  ResourceBudget* budget() const { return budget_; }

  /// Enables mark-sweep garbage collection on allocation pressure. Off by
  /// default: with GC off no Ref is ever invalidated (legacy arena mode).
  void set_gc_enabled(bool enabled) { gc_enabled_ = enabled; }
  bool gc_enabled() const { return gc_enabled_; }

  /// Sets the dynamic-reordering policy. kOnPressure sifts at the next
  /// operation entry after the table crosses the trigger; explicit
  /// reorder() works in any mode.
  void set_reorder_options(const ReorderOptions& options);
  const ReorderOptions& reorder_options() const { return reorder_options_; }

  /// Explicit collection at a safe point (must not be called from inside an
  /// operation). Returns the number of nodes reclaimed. Invalidates every
  /// unprotected non-terminal, non-variable Ref; handles are remapped.
  std::size_t collect_garbage();

  /// Explicit full sifting pass (implies a collection first). Safe-point
  /// only, like collect_garbage().
  void reorder();

  /// Pins `count` variables starting at first_var into one sifting group:
  /// they stay level-adjacent (in their current relative order) through all
  /// reordering. The vars must currently occupy adjacent levels. Used by
  /// SymbolicMachine to keep current/next-state pairs interleaved, which
  /// the partitioned image path's monotone rename depends on.
  void group_adjacent(unsigned first_var, unsigned count);

  /// Level indirection: level_of(v) is v's current depth from the root
  /// (0 = topmost); variable_order() lists vars topmost-first.
  unsigned level_of(unsigned var) const { return var2level_[var]; }
  std::vector<unsigned> variable_order() const { return level2var_; }

  /// Protects f (see BddHandle). Terminals and bare variables need no
  /// protection but protecting them is valid and cheap.
  BddHandle protect(Ref f) { return BddHandle(this, f); }

  /// The function of variable v / its complement.
  Ref var(unsigned v);
  Ref nvar(unsigned v);

  /// Shannon if-then-else — the universal connective.
  Ref ite(Ref f, Ref g, Ref h);

  // The two-step connectives (xor/xnor, and forall below) are defined out of
  // line as single operations: composing two public calls — ite(f, g,
  // bdd_not(g)) — would let the inner call hit a GC/reorder safe point and
  // silently invalidate the raw f and g already evaluated for the outer one.
  Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }
  Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref bdd_xor(Ref f, Ref g);
  Ref bdd_xnor(Ref f, Ref g);
  Ref bdd_implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  /// Wide-operand connectives by balanced tree reduction: combining
  /// neighbours pairwise keeps intermediate BDDs small and cache hits high,
  /// where a left fold grows one giant accumulator. Empty input yields the
  /// operation's identity (kTrue for AND, kFalse for OR/XOR).
  Ref bdd_and_many(std::vector<Ref> ops);
  Ref bdd_or_many(std::vector<Ref> ops);
  Ref bdd_xor_many(std::vector<Ref> ops);

  /// The positive cube v0 ∧ v1 ∧ ... of a variable set (duplicates fine,
  /// order irrelevant). Cubes are how quantifier sets are passed to the
  /// recursive operators: walking a cube costs one pointer chase per level
  /// instead of a num_vars-sized lookup table per call. Built deepest level
  /// first, so cubes stay canonical under any variable order.
  Ref make_cube(const std::vector<unsigned>& vars);

  /// Existential quantification over a set of variables.
  Ref exists(Ref f, const std::vector<unsigned>& vars);
  /// Same, with the set pre-built by make_cube (cube must be a positive
  /// cube; cheap to reuse across many calls).
  Ref exists_cube(Ref f, Ref cube);

  /// Fused relational product ∃cube. f ∧ g in a single recursion — the
  /// conjunction is never materialised, quantified variables disappear the
  /// moment both cofactor pairs are combined, and an OR branch that hits
  /// kTrue short-circuits its sibling entirely.
  Ref and_exists(Ref f, Ref g, Ref cube);
  Ref and_exists(Ref f, Ref g, const std::vector<unsigned>& vars);

  /// Variable renaming v -> map[v] (identity where map[v] == v). The
  /// mapping must be strictly monotone *in level order* on the support of f
  /// and the target variables must not occur in f outside the mapping's
  /// image — both are checked; violations throw InvalidArgument.
  Ref rename(Ref f, const std::vector<unsigned>& map);

  /// Simultaneous functional composition: substitutes every variable v in
  /// f by substitution[v] (use var(v) for identity).
  Ref compose(Ref f, const std::vector<Ref>& substitution);

  /// Universal quantification (dual of exists). Single operations for the
  /// same safe-point reason as bdd_xor.
  Ref forall(Ref f, const std::vector<unsigned>& vars);
  Ref forall_cube(Ref f, Ref cube);

  /// Evaluates under a complete assignment (assignment[v] = value of v).
  bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over variables [0, num_vars).
  double count_sat(Ref f) const;

  /// Some satisfying assignment (lexicographically smallest by the current
  /// variable order); f must not be kFalse.
  std::vector<bool> pick_model(Ref f) const;

  /// Variables in the support of f, ascending by variable id.
  std::vector<unsigned> support(Ref f) const;

  /// BDD node count of a single function (reachable nodes incl terminals).
  std::size_t size(Ref f) const;

  /// Operation-cache observability (hit rates drive cache sizing; the
  /// benches report them).
  struct OpCacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t overwrites = 0;  ///< stores that evicted a live entry
  };
  const OpCacheStats& op_cache_stats() const { return op_stats_; }
  std::size_t op_cache_entries() const { return ops_.size(); }
  std::size_t unique_table_entries() const { return table_.size(); }

  /// Structural self-check for tests and debugging: every live node's
  /// children sit at strictly deeper levels, the unique table holds no
  /// duplicate (var, lo, hi) triple, and every node reachable from a
  /// protected root or variable is findable through the table. Throws
  /// InternalError on the first violation.
  void check_invariants() const;

  /// Reclamation/reordering observability, surfaced through ResourceUsage,
  /// serve job stats and `rtv cls-equiv --json`.
  struct EngineStats {
    std::uint64_t gc_runs = 0;
    std::uint64_t nodes_reclaimed = 0;
    std::uint64_t reorder_runs = 0;
    std::size_t peak_nodes = 0;       ///< max nodes_ ever allocated
    std::size_t peak_live_nodes = 0;  ///< max live set seen at a GC (or
                                      ///< peak_nodes if GC never ran)
  };
  EngineStats stats() const;

 private:
  friend class BddHandle;

  struct Node {
    unsigned var;
    Ref lo;
    Ref hi;
  };
  /// Which recursive operator owns a cache entry. kFreeSlot doubles as the
  /// empty marker so a zeroed table is all-free.
  enum OpTag : std::uint32_t {
    kFreeSlot = 0,
    kOpIte,
    kOpExists,
    kOpAndExists,
  };
  struct OpEntry {
    Ref a = 0;
    Ref b = 0;
    Ref c = 0;
    std::uint32_t tag = kFreeSlot;
    Ref result = 0;
  };

  unsigned top_var(Ref f) const {
    return f <= kTrue ? num_vars_ : nodes_[f].var;
  }
  /// Depth of f's top variable in the current order (num_vars_ for
  /// terminals). Every recursive operator branches on the *shallowest
  /// level*, never the smallest var id — the one rule that makes the whole
  /// package order-agnostic.
  unsigned top_level(Ref f) const {
    return f <= kTrue ? num_vars_ : var2level_[nodes_[f].var];
  }
  Ref cofactor(Ref f, unsigned v, bool value) const;
  Ref find_or_add(unsigned var, Ref lo, Ref hi);

  void grow_unique_table();
  void maybe_grow_op_cache();
  void reset_op_cache(std::size_t entries);
  std::size_t op_slot(std::uint32_t tag, Ref a, Ref b, Ref c) const;
  bool op_find(std::uint32_t tag, Ref a, Ref b, Ref c, Ref* result);
  void op_store(std::uint32_t tag, Ref a, Ref b, Ref c, Ref result);

  /// Recursive cores (entered only through the public safe-point wrappers).
  Ref ite_rec(Ref f, Ref g, Ref h);
  Ref exists_rec(Ref f, Ref cube);
  Ref and_exists_rec(Ref f, Ref g, Ref cube);

  /// Safe-point maintenance: at the entry of a public operation (and only
  /// at depth 0), run any pending GC/reorder after temporarily protecting
  /// the operation's own arguments, then write the remapped Refs back.
  void enter_op(Ref* a, Ref* b = nullptr, Ref* c = nullptr);
  void enter_op_refs(std::vector<Ref>* refs, Ref* a);
  struct DepthGuard {
    explicit DepthGuard(BddManager* m) : m_(m) { ++m_->op_depth_; }
    ~DepthGuard() { --m_->op_depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    BddManager* m_;
  };

  /// Root registry backing BddHandle.
  std::uint32_t protect_slot(Ref f);
  void unprotect_slot(std::uint32_t slot);
  Ref root_at(std::uint32_t slot) const { return roots_[slot]; }

  /// GC internals.
  std::size_t collect_now();
  void mark_from(Ref root, std::vector<bool>* marked) const;

  /// Reordering internals.
  void reorder_now();
  void sift_block(std::uint32_t gid, std::vector<std::uint32_t>* order);
  std::size_t swap_levels(unsigned level);
  std::size_t block_level_start(const std::vector<std::uint32_t>& order,
                                std::size_t index) const;
  void swap_adjacent_blocks(unsigned top_start, std::size_t top_size,
                            std::size_t bottom_size);
  void move_block(std::vector<std::uint32_t>* order, std::size_t index,
                  bool down);
  void table_insert(Ref ref);
  void table_erase(Ref ref);
  void release_child(Ref child);
  bool node_is_dead(Ref ref) const;

  template <typename Op>
  Ref balanced_reduce(std::vector<Ref>& ops, Ref identity, Op&& op);

  unsigned num_vars_;
  std::size_t node_limit_;
  ResourceBudget* budget_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Ref> var_refs_;

  /// Current variable order (identity at construction).
  std::vector<unsigned> var2level_;
  std::vector<unsigned> level2var_;

  /// Sifting groups: group_of_[v] indexes groups_; every group's members
  /// occupy adjacent levels at all times (singletons for ungrouped vars).
  std::vector<std::vector<unsigned>> groups_;
  std::vector<std::uint32_t> group_of_;

  /// Open-addressed unique table: power-of-two array of node indices
  /// (kEmptySlot = free), linear probing, resized at 3/4 load. Keys live in
  /// nodes_ — a probe compares 12 contiguous bytes, no separate key copies.
  static constexpr Ref kEmptySlot = 0xFFFFFFFFu;
  std::vector<Ref> table_;
  std::size_t table_used_ = 0;

  /// Lossy operation cache shared by ITE / exists / and-exists.
  std::vector<OpEntry> ops_;
  bool ops_size_pinned_ = false;
  OpCacheStats op_stats_;

  /// External roots (BddHandle slots) with an intrusive free list.
  std::vector<Ref> roots_;
  std::vector<std::uint32_t> root_free_;

  /// Reclamation/reordering state.
  bool gc_enabled_ = false;
  ReorderOptions reorder_options_;
  unsigned op_depth_ = 0;
  bool gc_pending_ = false;
  bool reorder_pending_ = false;
  std::size_t gc_trigger_ = 0;       ///< next automatic GC threshold
  std::size_t reorder_trigger_ = 0;  ///< next automatic sift threshold
  bool in_reorder_ = false;
  bool sift_abort_ = false;  ///< set when a swap would blow node_limit_

  /// Sifting scratch (live only during reorder_now): structural reference
  /// counts, permanently-protected bitset, and per-var node buckets.
  std::vector<std::uint32_t> ref_count_;
  std::vector<bool> sift_root_;
  std::vector<std::vector<Ref>> var_nodes_;

  EngineStats stats_;
};

}  // namespace rtv
