#pragma once
// A reduced ordered binary decision diagram (ROBDD) package — the symbolic
// engine of the paper's verification era ([Pix92]'s sequential hardware
// equivalence and [PSAB94]'s safe-replacement checking were BDD-based).
// Hash-consed unique table, memoized ITE, existential quantification,
// monotone variable renaming and model counting: enough to run symbolic
// reachability on netlists (see bdd/symbolic.hpp) without explicit 2^L
// state enumeration.
//
// Design notes: no complement edges and no garbage collection — nodes are
// arena-allocated and live for the manager's lifetime, with a hard
// node_limit guard (CapacityError) instead of reclamation. This keeps the
// invariants tiny, and the experiment workloads comfortably fit.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/budget.hpp"
#include "util/error.hpp"

namespace rtv {

class BddManager {
 public:
  /// Node handle. kFalse/kTrue are the terminals.
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  explicit BddManager(unsigned num_vars,
                      std::size_t node_limit = kDefaultBddNodeLimit);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Attaches a cooperative resource budget (non-owning; may be nullptr).
  /// Node allocation then probes the budget's deadline/cancellation every
  /// few hundred nodes and honours its (possibly tighter) bdd_node_limit,
  /// throwing ResourceExhausted — which governed entry points catch and
  /// degrade on — instead of CapacityError.
  void set_budget(ResourceBudget* budget) { budget_ = budget; }
  ResourceBudget* budget() const { return budget_; }

  /// The function of variable v / its complement.
  Ref var(unsigned v);
  Ref nvar(unsigned v);

  /// Shannon if-then-else — the universal connective.
  Ref ite(Ref f, Ref g, Ref h);

  Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }
  Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref bdd_xor(Ref f, Ref g) { return ite(f, bdd_not(g), g); }
  Ref bdd_xnor(Ref f, Ref g) { return ite(f, g, bdd_not(g)); }
  Ref bdd_implies(Ref f, Ref g) { return ite(f, g, kTrue); }

  /// Existential quantification over a set of variables.
  Ref exists(Ref f, const std::vector<unsigned>& vars);

  /// Variable renaming v -> map[v] (identity where map[v] == v). The
  /// mapping must be strictly monotone on the support of f and the target
  /// variables must not occur in f outside the mapping's image — both are
  /// checked; violations throw InvalidArgument.
  Ref rename(Ref f, const std::vector<unsigned>& map);

  /// Simultaneous functional composition: substitutes every variable v in
  /// f by substitution[v] (use var(v) for identity).
  Ref compose(Ref f, const std::vector<Ref>& substitution);

  /// Universal quantification (dual of exists).
  Ref forall(Ref f, const std::vector<unsigned>& vars) {
    return bdd_not(exists(bdd_not(f), vars));
  }

  /// Evaluates under a complete assignment (assignment[v] = value of v).
  bool evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Number of satisfying assignments over variables [0, num_vars).
  double count_sat(Ref f) const;

  /// Some satisfying assignment (lexicographically smallest by var order);
  /// f must not be kFalse.
  std::vector<bool> pick_model(Ref f) const;

  /// Variables in the support of f, ascending.
  std::vector<unsigned> support(Ref f) const;

  /// BDD node count of a single function (reachable nodes incl terminals).
  std::size_t size(Ref f) const;

 private:
  struct Node {
    unsigned var;
    Ref lo;
    Ref hi;
  };
  struct NodeKey {
    unsigned var;
    Ref lo;
    Ref hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ULL + k.lo;
      h = h * 0x9e3779b97f4a7c15ULL + k.hi;
      return static_cast<std::size_t>(h ^ (h >> 31));
    }
  };
  struct IteKey {
    Ref f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ULL + k.g;
      h = h * 0x9e3779b97f4a7c15ULL + k.h;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  unsigned top_var(Ref f) const {
    return f <= kTrue ? num_vars_ : nodes_[f].var;
  }
  Ref cofactor(Ref f, unsigned v, bool value) const;
  Ref find_or_add(unsigned var, Ref lo, Ref hi);

  unsigned num_vars_;
  std::size_t node_limit_;
  ResourceBudget* budget_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Ref> var_refs_;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> unique_;
  std::unordered_map<IteKey, Ref, IteKeyHash> ite_cache_;
};

}  // namespace rtv
