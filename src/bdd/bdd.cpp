#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace rtv {

namespace {

/// Initial/maximum sizes (entries) of the two hashed structures. The unique
/// table grows without bound (it is exact); the op cache tops out — beyond
/// that, collisions overwrite (lossy) rather than grow the footprint.
constexpr std::size_t kInitialUniqueEntries = std::size_t{1} << 13;
constexpr std::size_t kInitialOpEntries = std::size_t{1} << 15;
constexpr std::size_t kMaxAdaptiveOpEntries = std::size_t{1} << 21;

/// 64-bit finalizer (splitmix64 tail): full avalanche so consecutive node
/// refs spread over the whole table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) {
  return mix64(a * 0x9e3779b97f4a7c15ULL + b * 0xc2b2ae3d27d4eb4fULL + c);
}

}  // namespace

BddManager::BddManager(unsigned num_vars, std::size_t node_limit,
                       std::size_t op_cache_entries)
    : num_vars_(num_vars), node_limit_(node_limit) {
  RTV_REQUIRE(num_vars <= 4096, "too many BDD variables");
  // Slots 0/1 are the terminals; their var field is a sentinel. Terminals
  // are not hashed into the unique table.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});
  table_.assign(kInitialUniqueEntries, kEmptySlot);
  if (op_cache_entries != 0) {
    ops_size_pinned_ = true;
    std::size_t entries = 2;
    while (entries < op_cache_entries) entries <<= 1;
    ops_.assign(entries, OpEntry{});
  } else {
    ops_.assign(kInitialOpEntries, OpEntry{});
  }
  var_refs_.resize(num_vars, kFalse);
  for (unsigned v = 0; v < num_vars; ++v) {
    var_refs_[v] = find_or_add(v, kFalse, kTrue);
  }
}

BddManager::Ref BddManager::var(unsigned v) {
  RTV_REQUIRE(v < num_vars_, "BDD variable out of range");
  return var_refs_[v];
}

BddManager::Ref BddManager::nvar(unsigned v) {
  return ite(var(v), kFalse, kTrue);
}

void BddManager::grow_unique_table() {
  std::vector<Ref> bigger(table_.size() * 2, kEmptySlot);
  const std::size_t mask = bigger.size() - 1;
  for (Ref ref = 2; ref < nodes_.size(); ++ref) {
    const Node& n = nodes_[ref];
    std::size_t slot = hash3(n.var, n.lo, n.hi) & mask;
    while (bigger[slot] != kEmptySlot) slot = (slot + 1) & mask;
    bigger[slot] = ref;
  }
  table_ = std::move(bigger);
}

void BddManager::maybe_grow_op_cache() {
  if (ops_size_pinned_ || ops_.size() >= kMaxAdaptiveOpEntries ||
      nodes_.size() <= ops_.size()) {
    return;
  }
  // Rehash live entries into the doubled table: keeping the cache warm
  // across a growth matters mid-way through a large image computation.
  std::vector<OpEntry> bigger(ops_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  for (const OpEntry& e : ops_) {
    if (e.tag == kFreeSlot) continue;
    bigger[hash3((static_cast<std::uint64_t>(e.tag) << 32) | e.a, e.b, e.c) &
           mask] = e;
  }
  ops_ = std::move(bigger);
}

std::size_t BddManager::op_slot(std::uint32_t tag, Ref a, Ref b,
                                Ref c) const {
  return hash3((static_cast<std::uint64_t>(tag) << 32) | a, b, c) &
         (ops_.size() - 1);
}

bool BddManager::op_find(std::uint32_t tag, Ref a, Ref b, Ref c,
                         Ref* result) {
  ++op_stats_.lookups;
  const OpEntry& e = ops_[op_slot(tag, a, b, c)];
  if (e.tag == tag && e.a == a && e.b == b && e.c == c) {
    ++op_stats_.hits;
    *result = e.result;
    return true;
  }
  return false;
}

void BddManager::op_store(std::uint32_t tag, Ref a, Ref b, Ref c,
                          Ref result) {
  OpEntry& e = ops_[op_slot(tag, a, b, c)];
  if (e.tag != kFreeSlot) ++op_stats_.overwrites;
  e = OpEntry{a, b, c, tag, result};
}

BddManager::Ref BddManager::find_or_add(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  std::size_t mask = table_.size() - 1;
  std::size_t slot = hash3(var, lo, hi) & mask;
  while (table_[slot] != kEmptySlot) {
    const Node& n = nodes_[table_[slot]];
    if (n.var == var && n.lo == lo && n.hi == hi) return table_[slot];
    slot = (slot + 1) & mask;
  }
  if (budget_ != nullptr) {
    budget_->note_bdd_nodes(nodes_.size());
    if (nodes_.size() >= budget_->limits().bdd_node_limit) {
      budget_->mark_exhausted(ResourceKind::kBddNodes);
      throw ResourceExhausted(ResourceKind::kBddNodes,
                              "BDD work exceeded the budget's node cap (" +
                                  std::to_string(nodes_.size()) + " nodes)");
    }
    // Probe deadline/cancellation every 1024 fresh nodes: cheap enough to
    // leave on, frequent enough that long ITE cascades stay responsive.
    if ((nodes_.size() & 1023u) == 0) {
      budget_->checkpoint_or_throw("bdd/alloc");
    }
  }
  if (nodes_.size() >= node_limit_) {
    throw CapacityError("BDD node limit exceeded: " +
                        std::to_string(nodes_.size()) + " nodes allocated, " +
                        "limit " + std::to_string(node_limit_));
  }
  nodes_.push_back(Node{var, lo, hi});
  const Ref ref = static_cast<Ref>(nodes_.size() - 1);
  table_[slot] = ref;
  if (++table_used_ * 4 >= table_.size() * 3) {
    grow_unique_table();
    maybe_grow_op_cache();
  }
  return ref;
}

BddManager::Ref BddManager::cofactor(Ref f, unsigned v, bool value) const {
  if (f <= kTrue || nodes_[f].var != v) return f;
  return value ? nodes_[f].hi : nodes_[f].lo;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  // Terminal rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  Ref cached;
  if (op_find(kOpIte, f, g, h, &cached)) return cached;

  const unsigned v = std::min({top_var(f), top_var(g), top_var(h)});
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref hi =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const Ref result = find_or_add(v, lo, hi);
  op_store(kOpIte, f, g, h, result);
  return result;
}

template <typename Op>
BddManager::Ref BddManager::balanced_reduce(std::vector<Ref>& ops,
                                            Ref identity, Op&& op) {
  if (ops.empty()) return identity;
  while (ops.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < ops.size(); i += 2) {
      ops[out++] = op(ops[i], ops[i + 1]);
    }
    if (ops.size() % 2 == 1) ops[out++] = ops.back();
    ops.resize(out);
  }
  return ops[0];
}

BddManager::Ref BddManager::bdd_and_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kTrue,
                         [this](Ref a, Ref b) { return bdd_and(a, b); });
}

BddManager::Ref BddManager::bdd_or_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kFalse,
                         [this](Ref a, Ref b) { return bdd_or(a, b); });
}

BddManager::Ref BddManager::bdd_xor_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kFalse,
                         [this](Ref a, Ref b) { return bdd_xor(a, b); });
}

BddManager::Ref BddManager::make_cube(const std::vector<unsigned>& vars) {
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Ref cube = kTrue;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    RTV_REQUIRE(*it < num_vars_, "cube variable out of range");
    cube = find_or_add(*it, kFalse, cube);
  }
  return cube;
}

BddManager::Ref BddManager::exists(Ref f, const std::vector<unsigned>& vars) {
  return exists_cube(f, make_cube(vars));
}

BddManager::Ref BddManager::exists_cube(Ref f, Ref cube) {
  if (f <= kTrue) return f;
  const unsigned fv = nodes_[f].var;
  // Quantified variables above f's top are don't-cares: skip them so the
  // cache keys stay maximally shareable.
  while (cube > kTrue && nodes_[cube].var < fv) cube = nodes_[cube].hi;
  if (cube == kTrue) return f;

  Ref cached;
  if (op_find(kOpExists, f, cube, 0, &cached)) return cached;

  // Copy out of nodes_ before recursing: recursion may reallocate nodes_.
  const Node n = nodes_[f];
  const unsigned cube_var = nodes_[cube].var;
  const Ref cube_rest = nodes_[cube].hi;
  Ref result;
  if (cube_var == fv) {
    const Ref lo = exists_cube(n.lo, cube_rest);
    // ∃v. f = f|v=0 ∨ f|v=1 — and an OR with kTrue needs no second branch.
    result = lo == kTrue ? kTrue : bdd_or(lo, exists_cube(n.hi, cube_rest));
  } else {
    const Ref lo = exists_cube(n.lo, cube);
    const Ref hi = exists_cube(n.hi, cube);
    result = find_or_add(fv, lo, hi);
  }
  op_store(kOpExists, f, cube, 0, result);
  return result;
}

BddManager::Ref BddManager::and_exists(Ref f, Ref g,
                                       const std::vector<unsigned>& vars) {
  return and_exists(f, g, make_cube(vars));
}

BddManager::Ref BddManager::and_exists(Ref f, Ref g, Ref cube) {
  if (f == kFalse || g == kFalse) return kFalse;
  const unsigned top = std::min(top_var(f), top_var(g));
  while (cube > kTrue && nodes_[cube].var < top) cube = nodes_[cube].hi;
  if (cube == kTrue) return bdd_and(f, g);  // nothing left to quantify
  if (f == g) return exists_cube(f, cube);
  if (f == kTrue) return exists_cube(g, cube);
  if (g == kTrue) return exists_cube(f, cube);
  if (f > g) std::swap(f, g);  // AND commutes: canonical cache key

  Ref cached;
  if (op_find(kOpAndExists, f, g, cube, &cached)) return cached;

  // Copy out of nodes_ before recursing: recursion may reallocate nodes_.
  const Ref f0 = cofactor(f, top, false);
  const Ref f1 = cofactor(f, top, true);
  const Ref g0 = cofactor(g, top, false);
  const Ref g1 = cofactor(g, top, true);
  const unsigned cube_var = nodes_[cube].var;
  const Ref cube_rest = nodes_[cube].hi;
  Ref result;
  if (cube_var == top) {
    // ∃v. (f ∧ g) = (f0 ∧ g0)|∃rest ∨ (f1 ∧ g1)|∃rest, with kTrue
    // short-circuiting the sibling branch.
    const Ref lo = and_exists(f0, g0, cube_rest);
    result = lo == kTrue ? kTrue : bdd_or(lo, and_exists(f1, g1, cube_rest));
  } else {
    const Ref lo = and_exists(f0, g0, cube);
    const Ref hi = and_exists(f1, g1, cube);
    result = find_or_add(top, lo, hi);
  }
  op_store(kOpAndExists, f, g, cube, result);
  return result;
}

BddManager::Ref BddManager::rename(Ref f, const std::vector<unsigned>& map) {
  RTV_REQUIRE(map.size() == num_vars_, "rename map size mismatch");
  // Monotonicity on the support (checked as we go: children always have
  // larger mapped var than the parent).
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: recursion may reallocate nodes_
    const unsigned target = map[n.var];
    RTV_REQUIRE(target < num_vars_, "rename target out of range");
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    RTV_REQUIRE(top_var(lo) > target && top_var(hi) > target,
                "rename map is not monotone on the support");
    const Ref result = find_or_add(target, lo, hi);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

BddManager::Ref BddManager::compose(Ref f,
                                    const std::vector<Ref>& substitution) {
  RTV_REQUIRE(substitution.size() == num_vars_,
              "substitution vector size mismatch");
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: ite below may reallocate nodes_
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    const Ref result = ite(substitution[n.var], hi, lo);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

bool BddManager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  RTV_REQUIRE(assignment.size() >= num_vars_, "assignment too short");
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::count_sat(Ref f) const {
  // Density formulation: the fraction of satisfying assignments is
  // invariant under skipped (don't-care) variables, so no level-gap
  // weighting is needed.
  std::unordered_map<Ref, double> cache;
  const auto recurse = [&](auto&& self, Ref node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node& n = nodes_[node];
    const double result = 0.5 * (self(self, n.lo) + self(self, n.hi));
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f) * std::pow(2.0, static_cast<double>(num_vars_));
}

std::vector<bool> BddManager::pick_model(Ref f) const {
  RTV_REQUIRE(f != kFalse, "pick_model of the empty set");
  std::vector<bool> model(num_vars_, false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      model[n.var] = false;
      f = n.lo;
    } else {
      model[n.var] = true;
      f = n.hi;
    }
  }
  return model;
}

std::vector<unsigned> BddManager::support(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<bool> in_support(num_vars_, false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (node <= kTrue || !seen.insert(node).second) continue;
    in_support[nodes_[node].var] = true;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second || node <= kTrue) continue;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  return seen.size();
}

}  // namespace rtv
