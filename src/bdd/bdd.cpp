#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace rtv {

namespace {

/// Initial/maximum sizes (entries) of the two hashed structures. The unique
/// table grows without bound (it is exact); the op cache tops out — beyond
/// that, collisions overwrite (lossy) rather than grow the footprint.
constexpr std::size_t kInitialUniqueEntries = std::size_t{1} << 13;
constexpr std::size_t kInitialOpEntries = std::size_t{1} << 15;
constexpr std::size_t kMaxAdaptiveOpEntries = std::size_t{1} << 21;

/// Garbage-collection pacing: the first collection fires once the arena
/// crosses kDefaultGcTrigger (or half a tiny node_limit), later ones at 2×
/// the previous live size so a stable working set is not re-marked forever.
constexpr std::size_t kMinGcTrigger = 1024;
constexpr std::size_t kDefaultGcTrigger = std::size_t{1} << 15;

/// 64-bit finalizer (splitmix64 tail): full avalanche so consecutive node
/// refs spread over the whole table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) {
  return mix64(a * 0x9e3779b97f4a7c15ULL + b * 0xc2b2ae3d27d4eb4fULL + c);
}

}  // namespace

// ---------------------------------------------------------------------------
// BddHandle

BddHandle::BddHandle(BddManager* mgr, std::uint32_t ref) : mgr_(mgr) {
  slot_ = mgr_->protect_slot(ref);
}

BddHandle::BddHandle(const BddHandle& other) : mgr_(other.mgr_) {
  if (mgr_ != nullptr) slot_ = mgr_->protect_slot(other.get());
}

BddHandle::BddHandle(BddHandle&& other) noexcept
    : mgr_(other.mgr_), slot_(other.slot_) {
  other.mgr_ = nullptr;
  other.slot_ = 0;
}

BddHandle& BddHandle::operator=(const BddHandle& other) {
  if (this == &other) return *this;
  reset();
  mgr_ = other.mgr_;
  if (mgr_ != nullptr) slot_ = mgr_->protect_slot(other.get());
  return *this;
}

BddHandle& BddHandle::operator=(BddHandle&& other) noexcept {
  if (this == &other) return *this;
  reset();
  mgr_ = other.mgr_;
  slot_ = other.slot_;
  other.mgr_ = nullptr;
  other.slot_ = 0;
  return *this;
}

BddHandle::~BddHandle() { reset(); }

std::uint32_t BddHandle::get() const {
  RTV_REQUIRE(mgr_ != nullptr, "get() on a disengaged BddHandle");
  return mgr_->root_at(slot_);
}

void BddHandle::reset() {
  if (mgr_ != nullptr) {
    mgr_->unprotect_slot(slot_);
    mgr_ = nullptr;
    slot_ = 0;
  }
}

void BddHandle::reset(BddManager* mgr, std::uint32_t ref) {
  // Protect the new root before releasing the old one so aliasing patterns
  // (h.reset(m, op(h.get()))) never leave a window with nothing protected.
  BddHandle next(mgr, ref);
  reset();
  *this = std::move(next);
}

// ---------------------------------------------------------------------------
// Construction / configuration

BddManager::BddManager(unsigned num_vars, std::size_t node_limit,
                       std::size_t op_cache_entries)
    : num_vars_(num_vars), node_limit_(node_limit) {
  RTV_REQUIRE(num_vars <= 4096, "too many BDD variables");
  // Slots 0/1 are the terminals; their var field is a sentinel. Terminals
  // are not hashed into the unique table.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});
  table_.assign(kInitialUniqueEntries, kEmptySlot);
  if (op_cache_entries != 0) {
    ops_size_pinned_ = true;
    std::size_t entries = 2;
    while (entries < op_cache_entries) entries <<= 1;
    ops_.assign(entries, OpEntry{});
  } else {
    ops_.assign(kInitialOpEntries, OpEntry{});
  }
  var2level_.resize(num_vars);
  level2var_.resize(num_vars);
  groups_.resize(num_vars);
  group_of_.resize(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    var2level_[v] = v;
    level2var_[v] = v;
    groups_[v] = {v};
    group_of_[v] = v;
  }
  gc_trigger_ = std::min(kDefaultGcTrigger,
                         std::max(node_limit_ / 2, kMinGcTrigger));
  reorder_trigger_ = reorder_options_.trigger_nodes;
  var_refs_.resize(num_vars, kFalse);
  for (unsigned v = 0; v < num_vars; ++v) {
    var_refs_[v] = find_or_add(v, kFalse, kTrue);
  }
}

void BddManager::set_reorder_options(const ReorderOptions& options) {
  RTV_REQUIRE(options.max_growth >= 1.0, "reorder max_growth must be >= 1");
  reorder_options_ = options;
  reorder_trigger_ = std::max<std::size_t>(options.trigger_nodes, 16);
}

void BddManager::group_adjacent(unsigned first_var, unsigned count) {
  RTV_REQUIRE(count >= 1 && first_var < num_vars_ &&
                  first_var + count <= num_vars_,
              "group_adjacent variable range out of bounds");
  std::vector<unsigned> members;
  for (unsigned v = first_var; v < first_var + count; ++v) {
    RTV_REQUIRE(groups_[group_of_[v]].size() == 1,
                "group_adjacent: variable already grouped");
    members.push_back(v);
  }
  std::sort(members.begin(), members.end(), [this](unsigned a, unsigned b) {
    return var2level_[a] < var2level_[b];
  });
  for (std::size_t i = 1; i < members.size(); ++i) {
    RTV_REQUIRE(var2level_[members[i]] == var2level_[members[i - 1]] + 1,
                "group_adjacent: variables are not level-adjacent");
  }
  const std::uint32_t gid = group_of_[members.front()];
  for (unsigned v : members) {
    groups_[group_of_[v]].clear();
    group_of_[v] = gid;
  }
  groups_[gid] = members;
}

void BddManager::check_invariants() const {
  std::vector<bool> live(nodes_.size(), false);
  live[kFalse] = true;
  live[kTrue] = true;
  for (const Ref v : var_refs_) mark_from(v, &live);
  for (const Ref r : roots_) mark_from(r, &live);
  const std::size_t mask = table_.size() - 1;
  for (Ref r = 2; r < static_cast<Ref>(nodes_.size()); ++r) {
    if (!live[r]) continue;
    const Node& n = nodes_[r];
    RTV_CHECK_MSG(n.lo != n.hi, "redundant node survives in the arena");
    for (const Ref c : {n.lo, n.hi}) {
      RTV_CHECK_MSG(c <= kTrue || var2level_[nodes_[c].var] >
                                      var2level_[n.var],
                    "child at or above its parent's level");
    }
    // The unique-table probe for this node's key must land on this node:
    // anything else is a missing entry or a duplicate triple.
    std::size_t slot = hash3(n.var, n.lo, n.hi) & mask;
    while (table_[slot] != kEmptySlot && table_[slot] != r) {
      const Node& o = nodes_[table_[slot]];
      RTV_CHECK_MSG(o.var != n.var || o.lo != n.lo || o.hi != n.hi,
                    "duplicate (var, lo, hi) triple in the unique table");
      slot = (slot + 1) & mask;
    }
    RTV_CHECK_MSG(table_[slot] == r, "live node missing from the unique table");
  }
}

BddManager::EngineStats BddManager::stats() const {
  EngineStats s = stats_;
  if (nodes_.size() > s.peak_nodes) s.peak_nodes = nodes_.size();
  // Without a collection there is no live/dead distinction to report: the
  // arena itself is the tightest known bound on the live set.
  if (s.gc_runs == 0) s.peak_live_nodes = s.peak_nodes;
  return s;
}

// ---------------------------------------------------------------------------
// Root registry

std::uint32_t BddManager::protect_slot(Ref f) {
  if (!root_free_.empty()) {
    const std::uint32_t slot = root_free_.back();
    root_free_.pop_back();
    roots_[slot] = f;
    return slot;
  }
  roots_.push_back(f);
  return static_cast<std::uint32_t>(roots_.size() - 1);
}

void BddManager::unprotect_slot(std::uint32_t slot) {
  // Free slots park on kFalse: always a valid (terminal) root, so GC can
  // mark the whole registry without consulting the free list.
  roots_[slot] = kFalse;
  root_free_.push_back(slot);
}

// ---------------------------------------------------------------------------
// Unique table / op cache plumbing

void BddManager::grow_unique_table() {
  // Rehash the table's own entries (not the arena): during sifting the
  // arena also holds unhashed dead nodes that must not be resurrected.
  std::vector<Ref> old = std::move(table_);
  table_.assign(old.size() * 2, kEmptySlot);
  const std::size_t mask = table_.size() - 1;
  for (Ref ref : old) {
    if (ref == kEmptySlot) continue;
    const Node& n = nodes_[ref];
    std::size_t slot = hash3(n.var, n.lo, n.hi) & mask;
    while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    table_[slot] = ref;
  }
}

void BddManager::table_insert(Ref ref) {
  const Node& n = nodes_[ref];
  const std::size_t mask = table_.size() - 1;
  std::size_t slot = hash3(n.var, n.lo, n.hi) & mask;
  while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
  table_[slot] = ref;
  if (++table_used_ * 4 >= table_.size() * 3) grow_unique_table();
}

void BddManager::table_erase(Ref ref) {
  const std::size_t mask = table_.size() - 1;
  const Node& key = nodes_[ref];
  std::size_t i = hash3(key.var, key.lo, key.hi) & mask;
  while (table_[i] != ref) {
    RTV_REQUIRE(table_[i] != kEmptySlot, "bdd: erasing an unhashed node");
    i = (i + 1) & mask;
  }
  // Backward-shift deletion keeps linear probing exact without tombstones:
  // every entry after the hole moves back iff its home slot lies at or
  // before the hole in probe order.
  table_[i] = kEmptySlot;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & mask;
    if (table_[j] == kEmptySlot) break;
    const Node& n = nodes_[table_[j]];
    const std::size_t home = hash3(n.var, n.lo, n.hi) & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      table_[i] = table_[j];
      table_[j] = kEmptySlot;
      i = j;
    }
  }
  --table_used_;
}

void BddManager::maybe_grow_op_cache() {
  if (ops_size_pinned_ || ops_.size() >= kMaxAdaptiveOpEntries ||
      nodes_.size() <= ops_.size()) {
    return;
  }
  // Rehash live entries into the doubled table: keeping the cache warm
  // across a growth matters mid-way through a large image computation.
  std::vector<OpEntry> bigger(ops_.size() * 2);
  const std::size_t mask = bigger.size() - 1;
  for (const OpEntry& e : ops_) {
    if (e.tag == kFreeSlot) continue;
    bigger[hash3((static_cast<std::uint64_t>(e.tag) << 32) | e.a, e.b, e.c) &
           mask] = e;
  }
  ops_ = std::move(bigger);
}

void BddManager::reset_op_cache(std::size_t entries) {
  ops_.assign(entries, OpEntry{});
}

std::size_t BddManager::op_slot(std::uint32_t tag, Ref a, Ref b,
                                Ref c) const {
  return hash3((static_cast<std::uint64_t>(tag) << 32) | a, b, c) &
         (ops_.size() - 1);
}

bool BddManager::op_find(std::uint32_t tag, Ref a, Ref b, Ref c,
                         Ref* result) {
  ++op_stats_.lookups;
  const OpEntry& e = ops_[op_slot(tag, a, b, c)];
  if (e.tag == tag && e.a == a && e.b == b && e.c == c) {
    ++op_stats_.hits;
    *result = e.result;
    return true;
  }
  return false;
}

void BddManager::op_store(std::uint32_t tag, Ref a, Ref b, Ref c,
                          Ref result) {
  OpEntry& e = ops_[op_slot(tag, a, b, c)];
  if (e.tag != kFreeSlot) ++op_stats_.overwrites;
  e = OpEntry{a, b, c, tag, result};
}

// ---------------------------------------------------------------------------
// Node allocation

BddManager::Ref BddManager::find_or_add(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const std::size_t mask = table_.size() - 1;
  std::size_t slot = hash3(var, lo, hi) & mask;
  while (table_[slot] != kEmptySlot) {
    const Node& n = nodes_[table_[slot]];
    if (n.var == var && n.lo == lo && n.hi == hi) return table_[slot];
    slot = (slot + 1) & mask;
  }
  if (budget_ != nullptr && !in_reorder_) {
    budget_->note_bdd_nodes(nodes_.size());
    if (nodes_.size() >= budget_->limits().bdd_node_limit) {
      budget_->mark_exhausted(ResourceKind::kBddNodes);
      throw ResourceExhausted(ResourceKind::kBddNodes,
                              "BDD work exceeded the budget's node cap (" +
                                  std::to_string(nodes_.size()) + " nodes)");
    }
    // Probe deadline/cancellation every 1024 fresh nodes: cheap enough to
    // leave on, frequent enough that long ITE cascades stay responsive.
    if ((nodes_.size() & 1023u) == 0) {
      budget_->checkpoint_or_throw("bdd/alloc");
    }
  }
  // Inside a reorder the per-swap headroom pre-check replaces both guards:
  // an exception between table_erase and the in-place rewrite would corrupt
  // the table, so swaps must never throw.
  if (nodes_.size() >= node_limit_ && !in_reorder_) {
    throw CapacityError("BDD node limit exceeded: " +
                        std::to_string(nodes_.size()) + " nodes allocated, " +
                        "limit " + std::to_string(node_limit_));
  }
  nodes_.push_back(Node{var, lo, hi});
  const Ref ref = static_cast<Ref>(nodes_.size() - 1);
  if (in_reorder_) {
    ref_count_.resize(nodes_.size(), 0);
    sift_root_.resize(nodes_.size(), false);
    if (lo > kTrue) ++ref_count_[lo];
    if (hi > kTrue) ++ref_count_[hi];
    var_nodes_[var].push_back(ref);
  }
  table_[slot] = ref;
  if (++table_used_ * 4 >= table_.size() * 3) {
    grow_unique_table();
    maybe_grow_op_cache();
  }
  if (nodes_.size() > stats_.peak_nodes) stats_.peak_nodes = nodes_.size();
  if (!in_reorder_) {
    if (gc_enabled_ && nodes_.size() >= gc_trigger_) gc_pending_ = true;
    if (reorder_options_.mode == ReorderMode::kOnPressure &&
        nodes_.size() >= reorder_trigger_) {
      reorder_pending_ = true;
    }
  }
  return ref;
}

// ---------------------------------------------------------------------------
// Safe-point maintenance

void BddManager::enter_op(Ref* a, Ref* b, Ref* c) {
  if (op_depth_ != 0 || in_reorder_) return;
  if (!gc_pending_ && !reorder_pending_) return;
  BddHandle ha, hb, hc;
  if (a != nullptr) ha.reset(this, *a);
  if (b != nullptr) hb.reset(this, *b);
  if (c != nullptr) hc.reset(this, *c);
  const bool do_reorder = reorder_pending_;
  gc_pending_ = false;
  reorder_pending_ = false;
  if (do_reorder) {
    reorder_now();
  } else {
    collect_now();
  }
  if (a != nullptr) *a = ha.get();
  if (b != nullptr) *b = hb.get();
  if (c != nullptr) *c = hc.get();
}

void BddManager::enter_op_refs(std::vector<Ref>* refs, Ref* a) {
  if (op_depth_ != 0 || in_reorder_) return;
  if (!gc_pending_ && !reorder_pending_) return;
  std::vector<BddHandle> handles;
  handles.reserve(refs->size());
  for (Ref r : *refs) handles.emplace_back(this, r);
  BddHandle ha;
  if (a != nullptr) ha.reset(this, *a);
  const bool do_reorder = reorder_pending_;
  gc_pending_ = false;
  reorder_pending_ = false;
  if (do_reorder) {
    reorder_now();
  } else {
    collect_now();
  }
  for (std::size_t i = 0; i < refs->size(); ++i) (*refs)[i] = handles[i].get();
  if (a != nullptr) *a = ha.get();
}

// ---------------------------------------------------------------------------
// Garbage collection

void BddManager::mark_from(Ref root, std::vector<bool>* marked) const {
  if (root <= kTrue || (*marked)[root]) return;
  std::vector<Ref> stack{root};
  (*marked)[root] = true;
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    for (const Ref c : {nodes_[r].lo, nodes_[r].hi}) {
      if (c > kTrue && !(*marked)[c]) {
        (*marked)[c] = true;
        stack.push_back(c);
      }
    }
  }
}

std::size_t BddManager::collect_garbage() {
  RTV_REQUIRE(op_depth_ == 0 && !in_reorder_,
              "collect_garbage from inside an operation");
  gc_pending_ = false;
  return collect_now();
}

std::size_t BddManager::collect_now() {
  if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/gc");
  const std::size_t before = nodes_.size();
  if (before > stats_.peak_nodes) stats_.peak_nodes = before;

  std::vector<bool> marked(before, false);
  marked[kFalse] = true;
  marked[kTrue] = true;
  for (const Ref v : var_refs_) mark_from(v, &marked);
  for (const Ref r : roots_) mark_from(r, &marked);

  // Forwarding map old ref -> compacted ref. Children may have larger
  // indices than parents after reordering, so fwd is fully built before any
  // node moves.
  std::vector<Ref> fwd(before, kEmptySlot);
  fwd[kFalse] = kFalse;
  fwd[kTrue] = kTrue;
  Ref next = 2;
  for (Ref r = 2; r < before; ++r) {
    if (marked[r]) fwd[r] = next++;
  }
  const std::size_t live = next;
  const std::size_t reclaimed = before - live;

  if (reclaimed > 0) {
    for (Ref r = 2; r < before; ++r) {
      if (!marked[r]) continue;
      Node n = nodes_[r];
      n.lo = fwd[n.lo];
      n.hi = fwd[n.hi];
      nodes_[fwd[r]] = n;
    }
    nodes_.resize(live);
    nodes_.shrink_to_fit();
    for (Ref& v : var_refs_) v = fwd[v];
    for (Ref& r : roots_) r = fwd[r];
    std::size_t want = kInitialUniqueEntries;
    while (want * 3 < live * 4) want <<= 1;
    table_.assign(want, kEmptySlot);
    table_used_ = 0;
    for (Ref r = 2; r < nodes_.size(); ++r) {
      const Node& n = nodes_[r];
      const std::size_t mask = table_.size() - 1;
      std::size_t slot = hash3(n.var, n.lo, n.hi) & mask;
      while (table_[slot] != kEmptySlot) slot = (slot + 1) & mask;
      table_[slot] = r;
      ++table_used_;
    }
  }
  // The op cache keys raw Refs, so it is garbage either way; an adaptively
  // grown cache also shrinks back so a collapsed working set does not pin a
  // huge cold cache (pinned caches keep their size for collision tests).
  reset_op_cache(ops_size_pinned_ ? ops_.size() : kInitialOpEntries);

  ++stats_.gc_runs;
  stats_.nodes_reclaimed += reclaimed;
  if (live > stats_.peak_live_nodes) stats_.peak_live_nodes = live;
  // Next collection at 2× the surviving set (4× when this one was mostly
  // futile) so a stable working set is not re-marked on every allocation.
  gc_trigger_ = std::max(live * (reclaimed * 4 < before ? 4 : 2),
                         kMinGcTrigger);
  if (budget_ != nullptr) {
    budget_->note_bdd_gc(reclaimed, live);
  }
  return reclaimed;
}

// ---------------------------------------------------------------------------
// Dynamic reordering (Rudell sifting)

void BddManager::release_child(Ref child) {
  if (child <= kTrue) return;
  if (--ref_count_[child] > 0) return;
  if (sift_root_[child]) return;
  // Structurally dead and not externally protected: unhash now so the key
  // cannot be resurrected, cascade into the children, and leave the arena
  // slot as junk for the trailing collection.
  table_erase(child);
  const Node n = nodes_[child];
  release_child(n.lo);
  release_child(n.hi);
}

bool BddManager::node_is_dead(Ref ref) const {
  return ref_count_[ref] == 0 && !sift_root_[ref];
}

std::size_t BddManager::swap_levels(unsigned level) {
  const unsigned x = level2var_[level];
  const unsigned y = level2var_[level + 1];
  std::vector<Ref> xs;
  xs.swap(var_nodes_[x]);
  std::vector<Ref> interacting;
  for (const Ref r : xs) {
    // Buckets are lazy: skip entries that died or were rewritten away.
    if (nodes_[r].var != x || node_is_dead(r)) continue;
    const Node& n = nodes_[r];
    const bool hits_y = (n.lo > kTrue && nodes_[n.lo].var == y) ||
                        (n.hi > kTrue && nodes_[n.hi].var == y);
    if (hits_y) {
      interacting.push_back(r);
    } else {
      // Independent of y: the node rides along as its var's level moves.
      var_nodes_[x].push_back(r);
    }
  }
  // A swap must be atomic (no exceptions once keys are erased), so check
  // worst-case headroom — two fresh nodes per rewritten one — up front and
  // abort the whole sift cleanly if the arena cannot absorb it.
  if (nodes_.size() + 2 * interacting.size() > node_limit_) {
    for (const Ref r : interacting) var_nodes_[x].push_back(r);
    sift_abort_ = true;
    return table_used_;
  }
  // Unhash every node being rewritten first: their old keys reference var-y
  // children and must not be findable while replacements are interned.
  for (const Ref r : interacting) table_erase(r);
  for (const Ref r : interacting) {
    const Node n = nodes_[r];
    Ref f00 = n.lo;
    Ref f01 = n.lo;
    if (n.lo > kTrue && nodes_[n.lo].var == y) {
      f00 = nodes_[n.lo].lo;
      f01 = nodes_[n.lo].hi;
    }
    Ref f10 = n.hi;
    Ref f11 = n.hi;
    if (n.hi > kTrue && nodes_[n.hi].var == y) {
      f10 = nodes_[n.hi].lo;
      f11 = nodes_[n.hi].hi;
    }
    const Ref new_lo = find_or_add(x, f00, f10);
    const Ref new_hi = find_or_add(x, f01, f11);
    // Rewrite r in place to top variable y: its Ref — and so every parent
    // and external handle — stays valid across the swap.
    if (new_lo > kTrue) ++ref_count_[new_lo];
    if (new_hi > kTrue) ++ref_count_[new_hi];
    nodes_[r] = Node{y, new_lo, new_hi};
    table_insert(r);
    var_nodes_[y].push_back(r);
    release_child(n.lo);
    release_child(n.hi);
  }
  level2var_[level] = y;
  level2var_[level + 1] = x;
  var2level_[x] = level + 1;
  var2level_[y] = level;
  return table_used_;
}

std::size_t BddManager::block_level_start(
    const std::vector<std::uint32_t>& order, std::size_t index) const {
  std::size_t level = 0;
  for (std::size_t i = 0; i < index; ++i) level += groups_[order[i]].size();
  return level;
}

void BddManager::swap_adjacent_blocks(unsigned top_start, std::size_t top_size,
                                      std::size_t bottom_size) {
  // Bubble each member of the upper block down past the lower block,
  // bottom member first; group adjacency is restored when the move ends.
  for (std::size_t i = 0; i < top_size; ++i) {
    unsigned level = top_start + static_cast<unsigned>(top_size - 1 - i);
    for (std::size_t k = 0; k < bottom_size; ++k) {
      if (sift_abort_) return;
      swap_levels(level);
      ++level;
    }
  }
}

void BddManager::move_block(std::vector<std::uint32_t>* order,
                            std::size_t index, bool down) {
  const std::size_t upper = down ? index : index - 1;
  swap_adjacent_blocks(
      static_cast<unsigned>(block_level_start(*order, upper)),
      groups_[(*order)[upper]].size(), groups_[(*order)[upper + 1]].size());
  if (!sift_abort_) std::swap((*order)[upper], (*order)[upper + 1]);
}

void BddManager::sift_block(std::uint32_t gid,
                            std::vector<std::uint32_t>* order) {
  const std::size_t count = order->size();
  std::size_t pos =
      static_cast<std::size_t>(std::find(order->begin(), order->end(), gid) -
                               order->begin());
  std::size_t best = table_used_;
  std::size_t best_pos = pos;
  const double max_growth = reorder_options_.max_growth;
  const auto too_big = [&](std::size_t cur) {
    return static_cast<double>(cur) >
           static_cast<double>(best) * max_growth;
  };
  // Explore downward to the bottom (or until the growth abort), then sweep
  // up through the start toward the top, then settle at the best level.
  while (pos + 1 < count && !sift_abort_) {
    move_block(order, pos, /*down=*/true);
    if (sift_abort_) return;
    ++pos;
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reorder");
    if (table_used_ < best) {
      best = table_used_;
      best_pos = pos;
    } else if (too_big(table_used_)) {
      break;
    }
  }
  while (pos > 0 && !sift_abort_) {
    // Moving back toward best_pos only retraces measured ground; the growth
    // abort applies once the block explores above it.
    if (pos <= best_pos && too_big(table_used_)) break;
    move_block(order, pos, /*down=*/false);
    if (sift_abort_) return;
    --pos;
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reorder");
    if (table_used_ < best) {
      best = table_used_;
      best_pos = pos;
    }
  }
  while (pos < best_pos && !sift_abort_) {
    move_block(order, pos, /*down=*/true);
    ++pos;
  }
  while (pos > best_pos && !sift_abort_) {
    move_block(order, pos, /*down=*/false);
    --pos;
  }
}

void BddManager::reorder() {
  RTV_REQUIRE(op_depth_ == 0 && !in_reorder_,
              "reorder from inside an operation");
  gc_pending_ = false;
  reorder_pending_ = false;
  reorder_now();
}

void BddManager::reorder_now() {
  // Collect first: sifting's structural reference counts are only exact
  // when every arena node is live.
  collect_now();
  in_reorder_ = true;
  sift_abort_ = false;
  try {
    ref_count_.assign(nodes_.size(), 0);
    sift_root_.assign(nodes_.size(), false);
    var_nodes_.assign(num_vars_, {});
    for (Ref r = 2; r < nodes_.size(); ++r) {
      const Node& n = nodes_[r];
      if (n.lo > kTrue) ++ref_count_[n.lo];
      if (n.hi > kTrue) ++ref_count_[n.hi];
      var_nodes_[n.var].push_back(r);
    }
    for (const Ref v : var_refs_) sift_root_[v] = true;
    for (const Ref r : roots_) {
      if (r > kTrue) sift_root_[r] = true;
    }

    // Blocks (groups) in current level order, sifted largest-first: big
    // levels have the most to gain and their wins help every later sift.
    std::vector<std::uint32_t> order;
    for (unsigned level = 0; level < num_vars_; ++level) {
      const std::uint32_t gid = group_of_[level2var_[level]];
      if (order.empty() || order.back() != gid) order.push_back(gid);
    }
    std::vector<std::uint32_t> by_size = order;
    std::stable_sort(by_size.begin(), by_size.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                       const auto pop = [this](std::uint32_t g) {
                         std::size_t sum = 0;
                         for (unsigned v : groups_[g]) {
                           sum += var_nodes_[v].size();
                         }
                         return sum;
                       };
                       return pop(a) > pop(b);
                     });
    for (const std::uint32_t gid : by_size) {
      if (sift_abort_) break;
      sift_block(gid, &order);
      if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reorder");
    }
  } catch (...) {
    // The table is consistent at every checkpoint; drop the scratch, make
    // sure the trigger will not refire immediately, and unwind.
    ref_count_.clear();
    sift_root_.clear();
    var_nodes_.clear();
    in_reorder_ = false;
    ++stats_.reorder_runs;
    reorder_trigger_ =
        std::max({reorder_options_.trigger_nodes, nodes_.size() * 2,
                  std::size_t{16}});
    throw;
  }
  ref_count_.clear();
  sift_root_.clear();
  var_nodes_.clear();
  in_reorder_ = false;
  ++stats_.reorder_runs;
  if (budget_ != nullptr) budget_->note_bdd_reorder();
  // Sweep the junk the swaps left behind and re-pace both triggers off the
  // post-reorder live size.
  collect_now();
  reorder_trigger_ = std::max({reorder_options_.trigger_nodes,
                               nodes_.size() * 2, std::size_t{16}});
}

// ---------------------------------------------------------------------------
// Operators

BddManager::Ref BddManager::var(unsigned v) {
  RTV_REQUIRE(v < num_vars_, "BDD variable out of range");
  return var_refs_[v];
}

BddManager::Ref BddManager::nvar(unsigned v) {
  return ite(var(v), kFalse, kTrue);
}

BddManager::Ref BddManager::cofactor(Ref f, unsigned v, bool value) const {
  if (f <= kTrue || nodes_[f].var != v) return f;
  return value ? nodes_[f].hi : nodes_[f].lo;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  enter_op(&f, &g, &h);
  DepthGuard guard(this);
  return ite_rec(f, g, h);
}

BddManager::Ref BddManager::bdd_xor(Ref f, Ref g) {
  enter_op(&f, &g);
  DepthGuard guard(this);
  const Ref ng = ite_rec(g, kFalse, kTrue);
  return ite_rec(f, ng, g);
}

BddManager::Ref BddManager::bdd_xnor(Ref f, Ref g) {
  enter_op(&f, &g);
  DepthGuard guard(this);
  const Ref ng = ite_rec(g, kFalse, kTrue);
  return ite_rec(f, g, ng);
}

BddManager::Ref BddManager::forall(Ref f, const std::vector<unsigned>& vars) {
  enter_op(&f);
  DepthGuard guard(this);
  const Ref nf = ite_rec(f, kFalse, kTrue);
  const Ref quantified = exists_rec(nf, make_cube(vars));
  return ite_rec(quantified, kFalse, kTrue);
}

BddManager::Ref BddManager::forall_cube(Ref f, Ref cube) {
  enter_op(&f, &cube);
  DepthGuard guard(this);
  const Ref nf = ite_rec(f, kFalse, kTrue);
  const Ref quantified = exists_rec(nf, cube);
  return ite_rec(quantified, kFalse, kTrue);
}

BddManager::Ref BddManager::ite_rec(Ref f, Ref g, Ref h) {
  // Terminal rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  Ref cached;
  if (op_find(kOpIte, f, g, h, &cached)) return cached;

  const unsigned level =
      std::min({top_level(f), top_level(g), top_level(h)});
  const unsigned v = level2var_[level];
  const Ref lo = ite_rec(cofactor(f, v, false), cofactor(g, v, false),
                         cofactor(h, v, false));
  const Ref hi = ite_rec(cofactor(f, v, true), cofactor(g, v, true),
                         cofactor(h, v, true));
  const Ref result = find_or_add(v, lo, hi);
  op_store(kOpIte, f, g, h, result);
  return result;
}

template <typename Op>
BddManager::Ref BddManager::balanced_reduce(std::vector<Ref>& ops,
                                            Ref identity, Op&& op) {
  // Each pairwise combine is its own public operation — NOT one fused op:
  // a wide reduction over order-hostile operands can grow exponentially at
  // intermediate levels, and only at operation entry can collection or
  // sifting step in and deflate the accumulators. Operands therefore ride
  // in handles so a combine's safe point cannot invalidate its neighbours.
  if (ops.empty()) return identity;
  std::vector<BddHandle> handles;
  handles.reserve(ops.size());
  for (const Ref r : ops) handles.emplace_back(this, r);
  while (handles.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < handles.size(); i += 2) {
      const Ref combined = op(handles[i].get(), handles[i + 1].get());
      handles[out++].reset(this, combined);
    }
    if (handles.size() % 2 == 1) handles[out++] = std::move(handles.back());
    handles.resize(out);
  }
  return handles[0].get();
}

BddManager::Ref BddManager::bdd_and_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kTrue,
                         [this](Ref a, Ref b) { return bdd_and(a, b); });
}

BddManager::Ref BddManager::bdd_or_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kFalse,
                         [this](Ref a, Ref b) { return bdd_or(a, b); });
}

BddManager::Ref BddManager::bdd_xor_many(std::vector<Ref> ops) {
  return balanced_reduce(ops, kFalse,
                         [this](Ref a, Ref b) { return bdd_xor(a, b); });
}

BddManager::Ref BddManager::make_cube(const std::vector<unsigned>& vars) {
  enter_op(nullptr);
  DepthGuard guard(this);
  std::vector<unsigned> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // Deepest level first: cube chains must follow the current order.
  std::sort(sorted.begin(), sorted.end(), [this](unsigned a, unsigned b) {
    return var2level_[a] > var2level_[b];
  });
  Ref cube = kTrue;
  for (const unsigned v : sorted) {
    RTV_REQUIRE(v < num_vars_, "cube variable out of range");
    cube = find_or_add(v, kFalse, cube);
  }
  return cube;
}

BddManager::Ref BddManager::exists(Ref f, const std::vector<unsigned>& vars) {
  enter_op(&f);
  DepthGuard guard(this);
  return exists_rec(f, make_cube(vars));
}

BddManager::Ref BddManager::exists_cube(Ref f, Ref cube) {
  enter_op(&f, &cube);
  DepthGuard guard(this);
  return exists_rec(f, cube);
}

BddManager::Ref BddManager::exists_rec(Ref f, Ref cube) {
  if (f <= kTrue) return f;
  const unsigned flevel = top_level(f);
  // Quantified variables above f's top are don't-cares: skip them so the
  // cache keys stay maximally shareable.
  while (cube > kTrue && var2level_[nodes_[cube].var] < flevel) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrue) return f;

  Ref cached;
  if (op_find(kOpExists, f, cube, 0, &cached)) return cached;

  // Copy out of nodes_ before recursing: recursion may reallocate nodes_.
  const Node n = nodes_[f];
  const unsigned cube_level = var2level_[nodes_[cube].var];
  const Ref cube_rest = nodes_[cube].hi;
  Ref result;
  if (cube_level == flevel) {
    const Ref lo = exists_rec(n.lo, cube_rest);
    // ∃v. f = f|v=0 ∨ f|v=1 — and an OR with kTrue needs no second branch.
    result = lo == kTrue ? kTrue : bdd_or(lo, exists_rec(n.hi, cube_rest));
  } else {
    const Ref lo = exists_rec(n.lo, cube);
    const Ref hi = exists_rec(n.hi, cube);
    result = find_or_add(n.var, lo, hi);
  }
  op_store(kOpExists, f, cube, 0, result);
  return result;
}

BddManager::Ref BddManager::and_exists(Ref f, Ref g,
                                       const std::vector<unsigned>& vars) {
  enter_op(&f, &g);
  DepthGuard guard(this);
  return and_exists_rec(f, g, make_cube(vars));
}

BddManager::Ref BddManager::and_exists(Ref f, Ref g, Ref cube) {
  enter_op(&f, &g, &cube);
  DepthGuard guard(this);
  return and_exists_rec(f, g, cube);
}

BddManager::Ref BddManager::and_exists_rec(Ref f, Ref g, Ref cube) {
  if (f == kFalse || g == kFalse) return kFalse;
  const unsigned top = std::min(top_level(f), top_level(g));
  while (cube > kTrue && var2level_[nodes_[cube].var] < top) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrue) return bdd_and(f, g);  // nothing left to quantify
  if (f == g) return exists_rec(f, cube);
  if (f == kTrue) return exists_rec(g, cube);
  if (g == kTrue) return exists_rec(f, cube);
  if (f > g) std::swap(f, g);  // AND commutes: canonical cache key

  Ref cached;
  if (op_find(kOpAndExists, f, g, cube, &cached)) return cached;

  // Copy out of nodes_ before recursing: recursion may reallocate nodes_.
  const unsigned v = level2var_[top];
  const Ref f0 = cofactor(f, v, false);
  const Ref f1 = cofactor(f, v, true);
  const Ref g0 = cofactor(g, v, false);
  const Ref g1 = cofactor(g, v, true);
  const unsigned cube_level = var2level_[nodes_[cube].var];
  const Ref cube_rest = nodes_[cube].hi;
  Ref result;
  if (cube_level == top) {
    // ∃v. (f ∧ g) = (f0 ∧ g0)|∃rest ∨ (f1 ∧ g1)|∃rest, with kTrue
    // short-circuiting the sibling branch.
    const Ref lo = and_exists_rec(f0, g0, cube_rest);
    result =
        lo == kTrue ? kTrue : bdd_or(lo, and_exists_rec(f1, g1, cube_rest));
  } else {
    const Ref lo = and_exists_rec(f0, g0, cube);
    const Ref hi = and_exists_rec(f1, g1, cube);
    result = find_or_add(v, lo, hi);
  }
  op_store(kOpAndExists, f, g, cube, result);
  return result;
}

BddManager::Ref BddManager::rename(Ref f, const std::vector<unsigned>& map) {
  RTV_REQUIRE(map.size() == num_vars_, "rename map size mismatch");
  enter_op(&f);
  DepthGuard guard(this);
  // Monotonicity in level order on the support (checked as we go: children
  // always land strictly deeper than the parent's target level).
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: recursion may reallocate nodes_
    const unsigned target = map[n.var];
    RTV_REQUIRE(target < num_vars_, "rename target out of range");
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    RTV_REQUIRE(top_level(lo) > var2level_[target] &&
                    top_level(hi) > var2level_[target],
                "rename map is not monotone on the support");
    const Ref result = find_or_add(target, lo, hi);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

BddManager::Ref BddManager::compose(Ref f,
                                    const std::vector<Ref>& substitution) {
  RTV_REQUIRE(substitution.size() == num_vars_,
              "substitution vector size mismatch");
  std::vector<Ref> subs = substitution;
  enter_op_refs(&subs, &f);
  DepthGuard guard(this);
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: ite below may reallocate nodes_
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    const Ref result = ite_rec(subs[n.var], hi, lo);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

bool BddManager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  RTV_REQUIRE(assignment.size() >= num_vars_, "assignment too short");
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::count_sat(Ref f) const {
  // Density formulation: the fraction of satisfying assignments is
  // invariant under skipped (don't-care) variables, so no level-gap
  // weighting is needed — and no order dependence either.
  std::unordered_map<Ref, double> cache;
  const auto recurse = [&](auto&& self, Ref node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node& n = nodes_[node];
    const double result = 0.5 * (self(self, n.lo) + self(self, n.hi));
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f) * std::pow(2.0, static_cast<double>(num_vars_));
}

std::vector<bool> BddManager::pick_model(Ref f) const {
  RTV_REQUIRE(f != kFalse, "pick_model of the empty set");
  std::vector<bool> model(num_vars_, false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      model[n.var] = false;
      f = n.lo;
    } else {
      model[n.var] = true;
      f = n.hi;
    }
  }
  return model;
}

std::vector<unsigned> BddManager::support(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<bool> in_support(num_vars_, false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (node <= kTrue || !seen.insert(node).second) continue;
    in_support[nodes_[node].var] = true;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second || node <= kTrue) continue;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  return seen.size();
}

}  // namespace rtv
