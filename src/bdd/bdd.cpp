#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rtv {

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  RTV_REQUIRE(num_vars <= 4096, "too many BDD variables");
  // Slots 0/1 are the terminals; their var field is a sentinel.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});
  var_refs_.resize(num_vars, kFalse);
  for (unsigned v = 0; v < num_vars; ++v) {
    var_refs_[v] = find_or_add(v, kFalse, kTrue);
  }
}

BddManager::Ref BddManager::var(unsigned v) {
  RTV_REQUIRE(v < num_vars_, "BDD variable out of range");
  return var_refs_[v];
}

BddManager::Ref BddManager::nvar(unsigned v) {
  return ite(var(v), kFalse, kTrue);
}

BddManager::Ref BddManager::find_or_add(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const NodeKey key{var, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (budget_ != nullptr) {
    budget_->note_bdd_nodes(nodes_.size());
    if (nodes_.size() >= budget_->limits().bdd_node_limit) {
      budget_->mark_exhausted(ResourceKind::kBddNodes);
      throw ResourceExhausted(ResourceKind::kBddNodes,
                              "BDD work exceeded the budget's node cap (" +
                                  std::to_string(nodes_.size()) + " nodes)");
    }
    // Probe deadline/cancellation every 1024 fresh nodes: cheap enough to
    // leave on, frequent enough that long ITE cascades stay responsive.
    if ((nodes_.size() & 1023u) == 0) {
      budget_->checkpoint_or_throw("bdd/alloc");
    }
  }
  if (nodes_.size() >= node_limit_) {
    throw CapacityError("BDD node limit exceeded: " +
                        std::to_string(nodes_.size()) + " nodes allocated, " +
                        "limit " + std::to_string(node_limit_));
  }
  nodes_.push_back(Node{var, lo, hi});
  const Ref ref = static_cast<Ref>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

BddManager::Ref BddManager::cofactor(Ref f, unsigned v, bool value) const {
  if (f <= kTrue || nodes_[f].var != v) return f;
  return value ? nodes_[f].hi : nodes_[f].lo;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  // Terminal rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const unsigned v = std::min({top_var(f), top_var(g), top_var(h)});
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref hi =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const Ref result = find_or_add(v, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddManager::Ref BddManager::exists(Ref f, const std::vector<unsigned>& vars) {
  std::vector<bool> quantified(num_vars_, false);
  for (const unsigned v : vars) {
    RTV_REQUIRE(v < num_vars_, "quantified variable out of range");
    quantified[v] = true;
  }
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: recursion may reallocate nodes_
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    const Ref result =
        quantified[n.var] ? bdd_or(lo, hi) : find_or_add(n.var, lo, hi);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

BddManager::Ref BddManager::rename(Ref f, const std::vector<unsigned>& map) {
  RTV_REQUIRE(map.size() == num_vars_, "rename map size mismatch");
  // Monotonicity on the support (checked as we go: children always have
  // larger mapped var than the parent).
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: recursion may reallocate nodes_
    const unsigned target = map[n.var];
    RTV_REQUIRE(target < num_vars_, "rename target out of range");
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    RTV_REQUIRE(top_var(lo) > target && top_var(hi) > target,
                "rename map is not monotone on the support");
    const Ref result = find_or_add(target, lo, hi);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

BddManager::Ref BddManager::compose(Ref f,
                                    const std::vector<Ref>& substitution) {
  RTV_REQUIRE(substitution.size() == num_vars_,
              "substitution vector size mismatch");
  std::unordered_map<Ref, Ref> cache;
  const auto recurse = [&](auto&& self, Ref node) -> Ref {
    if (node <= kTrue) return node;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node n = nodes_[node];  // copy: ite below may reallocate nodes_
    const Ref lo = self(self, n.lo);
    const Ref hi = self(self, n.hi);
    const Ref result = ite(substitution[n.var], hi, lo);
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f);
}

bool BddManager::evaluate(Ref f, const std::vector<bool>& assignment) const {
  RTV_REQUIRE(assignment.size() >= num_vars_, "assignment too short");
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::count_sat(Ref f) const {
  // Density formulation: the fraction of satisfying assignments is
  // invariant under skipped (don't-care) variables, so no level-gap
  // weighting is needed.
  std::unordered_map<Ref, double> cache;
  const auto recurse = [&](auto&& self, Ref node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    const auto hit = cache.find(node);
    if (hit != cache.end()) return hit->second;
    const Node& n = nodes_[node];
    const double result = 0.5 * (self(self, n.lo) + self(self, n.hi));
    cache.emplace(node, result);
    return result;
  };
  return recurse(recurse, f) * std::pow(2.0, static_cast<double>(num_vars_));
}

std::vector<bool> BddManager::pick_model(Ref f) const {
  RTV_REQUIRE(f != kFalse, "pick_model of the empty set");
  std::vector<bool> model(num_vars_, false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.lo != kFalse) {
      model[n.var] = false;
      f = n.lo;
    } else {
      model[n.var] = true;
      f = n.hi;
    }
  }
  return model;
}

std::vector<unsigned> BddManager::support(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<bool> in_support(num_vars_, false);
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (node <= kTrue || !seen.insert(node).second) continue;
    in_support[nodes_[node].var] = true;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t BddManager::size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second || node <= kTrue) continue;
    stack.push_back(nodes_[node].lo);
    stack.push_back(nodes_[node].hi);
  }
  return seen.size();
}

}  // namespace rtv
