#pragma once
// Symbolic state-machine implication — the BDD-era decision procedure for
// the paper's Section-3.3 relations ([Pix92]'s machinery applied to C ⊑ D).
//
// Over the paired product machine (shared inputs, disjoint state vars) the
// greatest bisimulation-style equivalence E(s, t) between C states and D
// states is the fixpoint of
//     E_0(s, t)     = ∀x. outputs_C(s, x) ≡ outputs_D(t, x)
//     E_{k+1}(s, t) = E_k(s, t) ∧ ∀x. E_k(δ_C(s, x), δ_D(t, x))
// and C ⊑ D  ⟺  ∀s ∃t. E*(s, t). With the delayed-design state sets this
// also answers the Thm 4.5 question — least n with C^n ⊑ D — fully
// symbolically, with no 2^L enumeration anywhere.

#include <memory>

#include "bdd/symbolic.hpp"
#include "netlist/miter.hpp"
#include "netlist/netlist.hpp"

namespace rtv {

class SymbolicImplication {
 public:
  /// c and d need equal PI and PO counts. With a budget attached the
  /// fixpoint iterations and node allocation are governed (see
  /// SymbolicMachine): blown limits throw ResourceExhausted for the
  /// budget's owner to catch and degrade on.
  SymbolicImplication(const Netlist& c, const Netlist& d,
                      std::size_t node_limit = kDefaultBddNodeLimit,
                      ResourceBudget* budget = nullptr);

  /// The fixpoint relation E*(s, t) over (C state vars, D state vars).
  BddManager::Ref equivalence_relation();

  /// Exact C ⊑ D.
  bool implies();

  /// Least n <= max_cycles with C^n ⊑ D, or -1.
  int min_delay_for_implication(unsigned max_cycles);

  SymbolicMachine& machine() { return *machine_; }

 private:
  BddManager::Ref forall_inputs(BddManager::Ref f);
  /// ∀s∈S ∃t. E*(s, t), where S is a set over C state variables.
  bool all_covered(BddManager::Ref c_states);

  PairedDesign pair_;
  ResourceBudget* budget_ = nullptr;
  std::unique_ptr<SymbolicMachine> machine_;
  /// Quantifier sets as cubes, built once (the recursive operators key
  /// their shared lossy cache on the cube node, so reuse is free). Held
  /// through handles so the relation and cubes survive GC/reordering.
  BddHandle input_cube_;
  BddHandle d_state_cube_;
  BddHandle relation_;  ///< disengaged until computed
};

}  // namespace rtv
