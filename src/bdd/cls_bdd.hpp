#pragma once
// BDD-based CLS-equivalence: the symbolic-reachability twin of the SAT
// backend in sat/equiv.hpp. Both designs are dual-rail encoded
// (aig/cls_encode.hpp), mitered, and the product machine's reachable set is
// computed as onion rings from the all-X initial state ((d,u) = (0,1) per
// latch pair); the single "neq" output is checked against each ring. A
// fixpoint with neq unreachable is a proof of CLS equivalence; a ring
// intersecting neq yields a concrete distinguishing ternary input sequence
// by walking the rings backward with pick_model. Node-cap or budget
// exhaustion degrades to kExhausted (never an exception).

#include <optional>
#include <string>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"

namespace rtv {

struct BddEquivOptions {
  /// Node cap of the miter's BDD manager (also bounded by the budget's
  /// bdd_node_limit when one is attached).
  std::size_t node_limit = kDefaultBddNodeLimit;
  /// Cap on image iterations; 0 = run to the fixpoint.
  unsigned max_iterations = 0;
  /// Garbage collection on allocation pressure (off = legacy arena mode).
  bool gc = false;
  /// Dynamic variable reordering policy for the miter's manager.
  ReorderOptions reorder;
};

struct BddClsOutcome {
  bool equivalent = false;
  Verdict verdict = Verdict::kExhausted;
  std::optional<TritsSeq> counterexample;
  /// Image iterations performed (rings beyond the initial state).
  unsigned iterations = 0;
  /// BDD nodes in the manager when the verdict was reached.
  std::size_t bdd_nodes = 0;
  /// Engine reclamation/reordering counters (BddManager::stats() at the
  /// verdict; all zero when the run exhausted before the machine existed).
  BddManager::EngineStats engine;
  /// Human-readable account of how the verdict was reached.
  std::string note;
};

/// Requires equal PI and PO counts. Verdicts: kProven (fixpoint reached or
/// counterexample found), kBounded (max_iterations hit without a
/// difference), kExhausted (node cap / budget blown).
BddClsOutcome bdd_cls_equivalence(const Netlist& a, const Netlist& b,
                                  const BddEquivOptions& options = {},
                                  ResourceBudget* budget = nullptr);

}  // namespace rtv
