#include "bdd/symbolic.hpp"

#include <cmath>

#include "netlist/miter.hpp"
#include "sim/port_map.hpp"
#include "util/bits.hpp"

// GC/reorder discipline in this file: any Ref that must survive a
// potentially-allocating manager call is held through a BddHandle; any Ref
// produced by one call and consumed by the next is passed along immediately
// with no allocating call in between (operation entry re-protects its own
// arguments). Where two allocating calls feed one expression, the inner one
// is hoisted into a named local first — C++ argument evaluation order is
// unspecified, so `op(h.get(), alloc(...))` could read the handle before the
// allocation invalidates the raw value it returned.

namespace rtv {

SymbolicMachine::SymbolicMachine(const Netlist& netlist,
                                 std::size_t node_limit,
                                 ResourceBudget* budget,
                                 std::size_t cluster_node_cap,
                                 const ReorderOptions& reorder,
                                 bool gc_enabled)
    : budget_(budget),
      num_latches_(static_cast<unsigned>(netlist.latches().size())),
      num_inputs_(static_cast<unsigned>(netlist.primary_inputs().size())),
      num_outputs_(static_cast<unsigned>(netlist.primary_outputs().size())) {
  RTV_REQUIRE(num_latches_ <= 256 && num_inputs_ <= 256,
              "SymbolicMachine capacity exceeded");
  RTV_REQUIRE(cluster_node_cap > 0, "cluster node cap must be positive");
  mgr_ = std::make_unique<BddManager>(2 * num_latches_ + num_inputs_,
                                      node_limit);
  mgr_->set_budget(budget_);
  // Pin each (sᵢ, s'ᵢ) pair as one sifting group before anything is built:
  // the partitioned image path renames next-state to state variables, which
  // is a monotone substitution exactly while every pair stays level-adjacent.
  for (unsigned i = 0; i < num_latches_; ++i) {
    mgr_->group_adjacent(state_var(i), 2);
  }
  mgr_->set_reorder_options(reorder);
  mgr_->set_gc_enabled(gc_enabled);
  BddManager& m = *mgr_;

  // Evaluate the combinational cones over per-port BDDs. Every port value
  // is a handle: with reordering on, a sift can fire between any two gate
  // evaluations and must see every intermediate cone as a root.
  const PortMap ports(netlist);
  std::vector<BddHandle> values;
  values.reserve(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    values.push_back(m.protect(BddManager::kFalse));
  }
  std::vector<std::uint32_t> io_pos(netlist.num_slots(), 0);
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());

  out_fn_.reserve(num_outputs_);
  for (unsigned j = 0; j < num_outputs_; ++j) {
    out_fn_.push_back(m.protect(BddManager::kFalse));
  }
  next_fn_.reserve(num_latches_);
  for (unsigned i = 0; i < num_latches_; ++i) {
    next_fn_.push_back(m.protect(BddManager::kFalse));
  }

  for (const NodeId id : combinational_topo_order(netlist)) {
    const Node& n = netlist.node(id);
    const std::uint32_t base = ports.index(PortRef(id, 0));
    const auto value_of = [&](PortRef p) {
      return values[ports.index(p)].get();
    };
    const auto set = [&](std::uint32_t index, BddManager::Ref f) {
      values[index].reset(&m, f);
    };
    switch (n.kind) {
      case CellKind::kInput:
        set(base, m.var(input_var(io_pos[id.value])));
        break;
      case CellKind::kLatch:
        set(base, m.var(state_var(io_pos[id.value])));
        break;
      case CellKind::kOutput:
        out_fn_[io_pos[id.value]].reset(&m, value_of(n.fanin[0]));
        break;
      case CellKind::kConst0:
        set(base, BddManager::kFalse);
        break;
      case CellKind::kConst1:
        set(base, BddManager::kTrue);
        break;
      case CellKind::kBuf:
        set(base, value_of(n.fanin[0]));
        break;
      case CellKind::kNot:
        set(base, m.bdd_not(value_of(n.fanin[0])));
        break;
      case CellKind::kAnd:
      case CellKind::kNand:
      case CellKind::kOr:
      case CellKind::kNor:
      case CellKind::kXor:
      case CellKind::kXnor: {
        // Balanced tree reduction over the fanin cone: pairwise combining
        // keeps intermediates small where a left fold grows one giant
        // accumulator. The operand vector is raw but handed to the *_many
        // entry point in one step, which protects it before any maintenance.
        std::vector<BddManager::Ref> operands;
        operands.reserve(n.fanin.size());
        for (const PortRef& d : n.fanin) operands.push_back(value_of(d));
        BddManager::Ref acc = BddManager::kFalse;
        bool invert = false;
        switch (n.kind) {
          case CellKind::kNand:
            invert = true;
            [[fallthrough]];
          case CellKind::kAnd:
            acc = m.bdd_and_many(std::move(operands));
            break;
          case CellKind::kNor:
            invert = true;
            [[fallthrough]];
          case CellKind::kOr:
            acc = m.bdd_or_many(std::move(operands));
            break;
          case CellKind::kXnor:
            invert = true;
            [[fallthrough]];
          default:  // kXor
            acc = m.bdd_xor_many(std::move(operands));
            break;
        }
        set(base, invert ? m.bdd_not(acc) : acc);
        break;
      }
      case CellKind::kMux:
        set(base, m.ite(value_of(n.fanin[0]), value_of(n.fanin[2]),
                        value_of(n.fanin[1])));
        break;
      case CellKind::kJunc: {
        const BddManager::Ref v = value_of(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          set(base + p, v);
        }
        break;
      }
      case CellKind::kTable: {
        // Minterm expansion, sharing cube prefixes: a recursive descent
        // over the pins builds each partial cube exactly once (the old
        // per-minterm rebuild from kTrue redid pin 0..k-1 work 2^(pins-k)
        // times) and collects per-output minterm lists for one balanced OR
        // at the end. The 2^pins walk is budget-checkpointed — it was an
        // unbounded stretch between checkpoints. Cubes ride in handles: the
        // lo-branch recursion can collect or sift while the parent frame
        // still needs its cube for the hi branch.
        const TruthTable& t = netlist.table(n.table);
        std::vector<BddHandle> pins;
        pins.reserve(n.num_pins());
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          pins.push_back(m.protect(value_of(n.fanin[pin])));
        }
        std::vector<std::vector<BddHandle>> minterms(n.num_ports());
        std::uint64_t leaves = 0;
        const auto expand = [&](auto&& self, std::uint32_t pin,
                                std::uint64_t x,
                                const BddHandle& cube) -> void {
          if (cube.get() == BddManager::kFalse) return;  // dead prefix
          if (pin == n.num_pins()) {
            if (budget_ != nullptr && (++leaves & 255u) == 0) {
              budget_->checkpoint_or_throw("bdd/table-minterms");
            }
            for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
              if (t.eval_bit(x, p)) minterms[p].push_back(cube);
            }
            return;
          }
          const BddManager::Ref npin = m.bdd_not(pins[pin].get());
          const BddHandle lo = m.protect(m.bdd_and(cube.get(), npin));
          self(self, pin + 1, x, lo);
          const BddHandle hi =
              m.protect(m.bdd_and(cube.get(), pins[pin].get()));
          self(self, pin + 1, x | (std::uint64_t{1} << pin), hi);
        };
        expand(expand, 0, 0, m.protect(BddManager::kTrue));
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          std::vector<BddManager::Ref> terms;
          terms.reserve(minterms[p].size());
          for (const BddHandle& h : minterms[p]) terms.push_back(h.get());
          set(base + p, m.bdd_or_many(std::move(terms)));
        }
        break;
      }
    }
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    const Node& latch = netlist.node(netlist.latches()[i]);
    next_fn_[i] = values[ports.index(latch.fanin[0])];
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    quantify_sx_.push_back(state_var(i));
  }
  for (unsigned j = 0; j < num_inputs_; ++j) {
    quantify_sx_.push_back(input_var(j));
  }
  rename_ns_.resize(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) rename_ns_[v] = v;
  for (unsigned i = 0; i < num_latches_; ++i) {
    rename_ns_[next_var(i)] = state_var(i);
  }

  build_partition(cluster_node_cap);
}

void SymbolicMachine::build_partition(std::size_t cluster_node_cap) {
  BddManager& m = *mgr_;

  // Cluster the per-latch conjuncts s'ᵢ ↔ fᵢ(s, x) greedily under the node
  // cap (a cluster is closed before it would exceed the cap; a single
  // oversized conjunct still gets its own cluster).
  for (unsigned i = 0; i < num_latches_; ++i) {
    const BddManager::Ref nv = m.var(next_var(i));
    const BddHandle conjunct =
        m.protect(m.bdd_xnor(nv, next_fn_[i].get()));
    const std::size_t conjunct_size = m.size(conjunct.get());
    if (partition_.empty() ||
        m.size(partition_.back().relation.get()) + conjunct_size >
            cluster_node_cap) {
      partition_.push_back(TransitionCluster{
          conjunct, m.protect(BddManager::kTrue), {i}});
    } else {
      TransitionCluster& cluster = partition_.back();
      cluster.relation.reset(
          &m, m.bdd_and(cluster.relation.get(), conjunct.get()));
      cluster.latches.push_back(i);
    }
  }

  // Quantification schedule (early quantification): each state/input
  // variable is scheduled at the LAST cluster whose support contains it —
  // once that cluster has been conjoined, the variable is dead in every
  // remaining conjunct and can be existentially removed on the spot.
  // Variables in no cluster at all are quantified from the source set
  // before the chain starts.
  std::vector<int> last_cluster(m.num_vars(), -1);
  for (std::size_t k = 0; k < partition_.size(); ++k) {
    for (const unsigned v : m.support(partition_[k].relation.get())) {
      last_cluster[v] = static_cast<int>(k);
    }
  }
  std::vector<std::vector<unsigned>> schedule(partition_.size());
  std::vector<unsigned> pre_quantify;
  for (const unsigned v : quantify_sx_) {
    if (last_cluster[v] < 0) {
      pre_quantify.push_back(v);
    } else {
      schedule[static_cast<std::size_t>(last_cluster[v])].push_back(v);
    }
  }
  pre_quantify_cube_.reset(&m, m.make_cube(pre_quantify));
  for (std::size_t k = 0; k < partition_.size(); ++k) {
    partition_[k].quantify_cube.reset(&m, m.make_cube(schedule[k]));
  }
}

BddManager::Ref SymbolicMachine::transition() {
  if (!transition_.engaged()) {
    std::vector<BddManager::Ref> clusters;
    clusters.reserve(partition_.size());
    for (const TransitionCluster& c : partition_) {
      clusters.push_back(c.relation.get());
    }
    transition_.reset(mgr_.get(), mgr_->bdd_and_many(std::move(clusters)));
  }
  return transition_.get();
}

BddManager::Ref SymbolicMachine::state_cube(const Bits& state) {
  RTV_REQUIRE(state.size() == num_latches_, "state vector size mismatch");
  BddManager& m = *mgr_;
  BddHandle cube = m.protect(BddManager::kTrue);
  for (unsigned i = num_latches_; i-- > 0;) {
    const BddManager::Ref lit =
        state[i] != 0 ? m.var(state_var(i)) : m.nvar(state_var(i));
    cube.reset(&m, m.bdd_and(lit, cube.get()));
  }
  return cube.get();
}

BddManager::Ref SymbolicMachine::image(BddManager::Ref states) {
  BddManager& m = *mgr_;
  BddHandle acc =
      m.protect(m.exists_cube(states, pre_quantify_cube_.get()));
  for (const TransitionCluster& cluster : partition_) {
    acc.reset(&m, m.and_exists(acc.get(), cluster.relation.get(),
                               cluster.quantify_cube.get()));
  }
  return m.rename(acc.get(), rename_ns_);
}

BddManager::Ref SymbolicMachine::image_monolithic(BddManager::Ref states) {
  BddManager& m = *mgr_;
  const BddHandle s = m.protect(states);
  const BddManager::Ref t = transition();  // may build T (allocating)
  const BddManager::Ref conj = m.bdd_and(s.get(), t);
  const BddManager::Ref next = m.exists(conj, quantify_sx_);
  return m.rename(next, rename_ns_);
}

BddManager::Ref SymbolicMachine::fixpoint_from(BddManager::Ref init,
                                               bool monolithic) {
  BddManager& m = *mgr_;
  BddHandle frontier = m.protect(init);
  BddHandle all = m.protect(init);
  while (frontier.get() != BddManager::kFalse) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reach-iter");
    const BddHandle next = m.protect(
        monolithic ? image_monolithic(frontier.get()) : image(frontier.get()));
    const BddManager::Ref not_all = m.bdd_not(all.get());
    const BddHandle fresh = m.protect(m.bdd_and(next.get(), not_all));
    all.reset(&m, m.bdd_or(all.get(), fresh.get()));
    frontier = fresh;
  }
  return all.get();
}

BddManager::Ref SymbolicMachine::reachable(BddManager::Ref init) {
  return fixpoint_from(init, /*monolithic=*/false);
}

BddManager::Ref SymbolicMachine::reachable_monolithic(BddManager::Ref init) {
  return fixpoint_from(init, /*monolithic=*/true);
}

BddManager::Ref SymbolicMachine::states_after_delay(unsigned cycles) {
  BddManager& m = *mgr_;
  BddHandle current = m.protect(all_states());
  for (unsigned k = 0; k < cycles; ++k) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/delay-iter");
    const BddManager::Ref next = image(current.get());
    if (next == current.get()) break;  // monotone chain hit its fixpoint
    current.reset(&m, next);
  }
  return current.get();
}

double SymbolicMachine::count_states(BddManager::Ref states) {
  // count_sat ranges over all variables; divide out next-state and input
  // variables (a state set depends only on state variables).
  const double total = mgr_->count_sat(states);
  const double divisor =
      std::pow(2.0, static_cast<double>(num_latches_ + num_inputs_));
  return total / divisor;
}

SymbolicExactSimulator::SymbolicExactSimulator(const Netlist& netlist,
                                               std::size_t node_limit)
    : machine_(netlist, node_limit) {
  substitution_.resize(machine_.manager().num_vars());
  reset_all_powerup();
}

void SymbolicExactSimulator::reset_all_powerup() {
  reset_from_ternary(Trits(machine_.num_latches(), Trit::kX));
}

void SymbolicExactSimulator::reset_from_ternary(const Trits& state) {
  RTV_REQUIRE(state.size() == machine_.num_latches(),
              "state vector size mismatch");
  BddManager& m = machine_.manager();
  state_fn_.clear();
  state_fn_.reserve(machine_.num_latches());
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    switch (state[i]) {
      case Trit::kZero:
        state_fn_.push_back(m.protect(BddManager::kFalse));
        break;
      case Trit::kOne:
        state_fn_.push_back(m.protect(BddManager::kTrue));
        break;
      case Trit::kX:
        state_fn_.push_back(m.protect(m.var(machine_.state_var(i))));
        break;
    }
  }
}

Trits SymbolicExactSimulator::step(const Bits& inputs) {
  RTV_REQUIRE(inputs.size() == machine_.num_inputs(),
              "input vector size mismatch");
  BddManager& m = machine_.manager();
  // Substitute each state variable by the current symbolic latch value and
  // each input variable by this cycle's constant; every other slot is the
  // identity. Raw Refs in the substitution go stale whenever a compose
  // collects or sifts, so the vector is refreshed from the handles before
  // every compose call (cheap: num_vars slot writes against a full
  // composition).
  const auto refresh = [&]() {
    for (unsigned v = 0; v < m.num_vars(); ++v) substitution_[v] = m.var(v);
    for (unsigned i = 0; i < machine_.num_latches(); ++i) {
      substitution_[machine_.state_var(i)] = state_fn_[i].get();
    }
    for (unsigned j = 0; j < machine_.num_inputs(); ++j) {
      substitution_[machine_.input_var(j)] =
          inputs[j] != 0 ? BddManager::kTrue : BddManager::kFalse;
    }
  };

  Trits outs(machine_.num_outputs(), Trit::kX);
  for (unsigned j = 0; j < machine_.num_outputs(); ++j) {
    refresh();
    const BddManager::Ref f =
        m.compose(machine_.output_function(j), substitution_);
    if (f == BddManager::kTrue) {
      outs[j] = Trit::kOne;
    } else if (f == BddManager::kFalse) {
      outs[j] = Trit::kZero;
    }
  }
  std::vector<BddHandle> next;
  next.reserve(machine_.num_latches());
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    refresh();
    next.push_back(
        m.protect(m.compose(machine_.next_function(i), substitution_)));
  }
  state_fn_ = std::move(next);
  return outs;
}

TritsSeq SymbolicExactSimulator::run(const BitsSeq& inputs) {
  TritsSeq outs;
  outs.reserve(inputs.size());
  for (const Bits& in : inputs) outs.push_back(step(in));
  return outs;
}

Trits SymbolicExactSimulator::state_abstraction() const {
  Trits result(machine_.num_latches(), Trit::kX);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    if (state_fn_[i].get() == BddManager::kTrue) {
      result[i] = Trit::kOne;
    } else if (state_fn_[i].get() == BddManager::kFalse) {
      result[i] = Trit::kZero;
    }
  }
  return result;
}

bool symbolically_equivalent_from(const Netlist& a, const Bits& state_a,
                                  const Netlist& b, const Bits& state_b,
                                  std::size_t node_limit) {
  const Miter miter = build_miter(a, b);
  SymbolicMachine machine(miter.netlist, node_limit);
  BddManager& m = machine.manager();
  Bits joint = state_a;
  joint.insert(joint.end(), state_b.begin(), state_b.end());
  const BddHandle reach =
      m.protect(machine.reachable(machine.state_cube(joint)));
  // Disagreement: some reachable state and input with neq = 1.
  const BddManager::Ref bad =
      m.bdd_and(reach.get(), machine.output_function(0));
  return bad == BddManager::kFalse;
}

}  // namespace rtv
