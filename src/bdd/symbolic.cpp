#include "bdd/symbolic.hpp"

#include <cmath>

#include "netlist/miter.hpp"
#include "sim/port_map.hpp"
#include "util/bits.hpp"

namespace rtv {

SymbolicMachine::SymbolicMachine(const Netlist& netlist,
                                 std::size_t node_limit,
                                 ResourceBudget* budget,
                                 std::size_t cluster_node_cap)
    : budget_(budget),
      num_latches_(static_cast<unsigned>(netlist.latches().size())),
      num_inputs_(static_cast<unsigned>(netlist.primary_inputs().size())),
      num_outputs_(static_cast<unsigned>(netlist.primary_outputs().size())) {
  RTV_REQUIRE(num_latches_ <= 256 && num_inputs_ <= 256,
              "SymbolicMachine capacity exceeded");
  RTV_REQUIRE(cluster_node_cap > 0, "cluster node cap must be positive");
  mgr_ = std::make_unique<BddManager>(2 * num_latches_ + num_inputs_,
                                      node_limit);
  mgr_->set_budget(budget_);
  BddManager& m = *mgr_;

  // Evaluate the combinational cones over per-port BDDs.
  const PortMap ports(netlist);
  std::vector<BddManager::Ref> values(ports.size(), BddManager::kFalse);
  std::vector<std::uint32_t> io_pos(netlist.num_slots(), 0);
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());

  out_fn_.assign(num_outputs_, BddManager::kFalse);
  next_fn_.assign(num_latches_, BddManager::kFalse);

  for (const NodeId id : combinational_topo_order(netlist)) {
    const Node& n = netlist.node(id);
    const std::uint32_t base = ports.index(PortRef(id, 0));
    const auto value_of = [&](PortRef p) { return values[ports.index(p)]; };
    switch (n.kind) {
      case CellKind::kInput:
        values[base] = m.var(input_var(io_pos[id.value]));
        break;
      case CellKind::kLatch:
        values[base] = m.var(state_var(io_pos[id.value]));
        break;
      case CellKind::kOutput:
        out_fn_[io_pos[id.value]] = value_of(n.fanin[0]);
        break;
      case CellKind::kConst0:
        values[base] = BddManager::kFalse;
        break;
      case CellKind::kConst1:
        values[base] = BddManager::kTrue;
        break;
      case CellKind::kBuf:
        values[base] = value_of(n.fanin[0]);
        break;
      case CellKind::kNot:
        values[base] = m.bdd_not(value_of(n.fanin[0]));
        break;
      case CellKind::kAnd:
      case CellKind::kNand:
      case CellKind::kOr:
      case CellKind::kNor:
      case CellKind::kXor:
      case CellKind::kXnor: {
        // Balanced tree reduction over the fanin cone: pairwise combining
        // keeps intermediates small where a left fold grows one giant
        // accumulator.
        std::vector<BddManager::Ref> operands;
        operands.reserve(n.fanin.size());
        for (const PortRef& d : n.fanin) operands.push_back(value_of(d));
        BddManager::Ref acc = BddManager::kFalse;
        bool invert = false;
        switch (n.kind) {
          case CellKind::kNand:
            invert = true;
            [[fallthrough]];
          case CellKind::kAnd:
            acc = m.bdd_and_many(std::move(operands));
            break;
          case CellKind::kNor:
            invert = true;
            [[fallthrough]];
          case CellKind::kOr:
            acc = m.bdd_or_many(std::move(operands));
            break;
          case CellKind::kXnor:
            invert = true;
            [[fallthrough]];
          default:  // kXor
            acc = m.bdd_xor_many(std::move(operands));
            break;
        }
        values[base] = invert ? m.bdd_not(acc) : acc;
        break;
      }
      case CellKind::kMux:
        values[base] = m.ite(value_of(n.fanin[0]), value_of(n.fanin[2]),
                             value_of(n.fanin[1]));
        break;
      case CellKind::kJunc: {
        const BddManager::Ref v = value_of(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          values[base + p] = v;
        }
        break;
      }
      case CellKind::kTable: {
        // Minterm expansion, sharing cube prefixes: a recursive descent
        // over the pins builds each partial cube exactly once (the old
        // per-minterm rebuild from kTrue redid pin 0..k-1 work 2^(pins-k)
        // times) and collects per-output minterm lists for one balanced OR
        // at the end. The 2^pins walk is budget-checkpointed — it was an
        // unbounded stretch between checkpoints.
        const TruthTable& t = netlist.table(n.table);
        std::vector<BddManager::Ref> pins(n.num_pins());
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          pins[pin] = value_of(n.fanin[pin]);
        }
        std::vector<std::vector<BddManager::Ref>> minterms(n.num_ports());
        std::uint64_t leaves = 0;
        const auto expand = [&](auto&& self, std::uint32_t pin,
                                std::uint64_t x,
                                BddManager::Ref cube) -> void {
          if (cube == BddManager::kFalse) return;  // dead prefix
          if (pin == n.num_pins()) {
            if (budget_ != nullptr && (++leaves & 255u) == 0) {
              budget_->checkpoint_or_throw("bdd/table-minterms");
            }
            for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
              if (t.eval_bit(x, p)) minterms[p].push_back(cube);
            }
            return;
          }
          self(self, pin + 1, x, m.bdd_and(cube, m.bdd_not(pins[pin])));
          self(self, pin + 1, x | (std::uint64_t{1} << pin),
               m.bdd_and(cube, pins[pin]));
        };
        expand(expand, 0, 0, BddManager::kTrue);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          values[base + p] = m.bdd_or_many(std::move(minterms[p]));
        }
        break;
      }
    }
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    const Node& latch = netlist.node(netlist.latches()[i]);
    next_fn_[i] = values[ports.index(latch.fanin[0])];
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    quantify_sx_.push_back(state_var(i));
  }
  for (unsigned j = 0; j < num_inputs_; ++j) {
    quantify_sx_.push_back(input_var(j));
  }
  rename_ns_.resize(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) rename_ns_[v] = v;
  for (unsigned i = 0; i < num_latches_; ++i) {
    rename_ns_[next_var(i)] = state_var(i);
  }

  build_partition(cluster_node_cap);
}

void SymbolicMachine::build_partition(std::size_t cluster_node_cap) {
  BddManager& m = *mgr_;

  // Cluster the per-latch conjuncts s'ᵢ ↔ fᵢ(s, x) greedily under the node
  // cap (a cluster is closed before it would exceed the cap; a single
  // oversized conjunct still gets its own cluster).
  for (unsigned i = 0; i < num_latches_; ++i) {
    const BddManager::Ref conjunct =
        m.bdd_xnor(m.var(next_var(i)), next_fn_[i]);
    const std::size_t conjunct_size = m.size(conjunct);
    if (partition_.empty() ||
        m.size(partition_.back().relation) + conjunct_size >
            cluster_node_cap) {
      partition_.push_back(TransitionCluster{conjunct, BddManager::kTrue,
                                             {i}});
    } else {
      TransitionCluster& cluster = partition_.back();
      cluster.relation = m.bdd_and(cluster.relation, conjunct);
      cluster.latches.push_back(i);
    }
  }

  // Quantification schedule (early quantification): each state/input
  // variable is scheduled at the LAST cluster whose support contains it —
  // once that cluster has been conjoined, the variable is dead in every
  // remaining conjunct and can be existentially removed on the spot.
  // Variables in no cluster at all are quantified from the source set
  // before the chain starts.
  std::vector<int> last_cluster(m.num_vars(), -1);
  for (std::size_t k = 0; k < partition_.size(); ++k) {
    for (const unsigned v : m.support(partition_[k].relation)) {
      last_cluster[v] = static_cast<int>(k);
    }
  }
  std::vector<std::vector<unsigned>> schedule(partition_.size());
  std::vector<unsigned> pre_quantify;
  for (const unsigned v : quantify_sx_) {
    if (last_cluster[v] < 0) {
      pre_quantify.push_back(v);
    } else {
      schedule[static_cast<std::size_t>(last_cluster[v])].push_back(v);
    }
  }
  pre_quantify_cube_ = m.make_cube(pre_quantify);
  for (std::size_t k = 0; k < partition_.size(); ++k) {
    partition_[k].quantify_cube = m.make_cube(schedule[k]);
  }
}

BddManager::Ref SymbolicMachine::transition() {
  if (transition_ == BddManager::kFalse) {  // T is never kFalse: unbuilt
    std::vector<BddManager::Ref> clusters;
    clusters.reserve(partition_.size());
    for (const TransitionCluster& c : partition_) {
      clusters.push_back(c.relation);
    }
    transition_ = mgr_->bdd_and_many(std::move(clusters));
  }
  return transition_;
}

BddManager::Ref SymbolicMachine::state_cube(const Bits& state) {
  RTV_REQUIRE(state.size() == num_latches_, "state vector size mismatch");
  BddManager::Ref cube = BddManager::kTrue;
  for (unsigned i = num_latches_; i-- > 0;) {
    cube = mgr_->bdd_and(state[i] != 0 ? mgr_->var(state_var(i))
                                       : mgr_->nvar(state_var(i)),
                         cube);
  }
  return cube;
}

BddManager::Ref SymbolicMachine::image(BddManager::Ref states) {
  BddManager& m = *mgr_;
  BddManager::Ref acc = m.exists_cube(states, pre_quantify_cube_);
  for (const TransitionCluster& cluster : partition_) {
    acc = m.and_exists(acc, cluster.relation, cluster.quantify_cube);
  }
  return m.rename(acc, rename_ns_);
}

BddManager::Ref SymbolicMachine::image_monolithic(BddManager::Ref states) {
  const BddManager::Ref conj = mgr_->bdd_and(states, transition());
  const BddManager::Ref next = mgr_->exists(conj, quantify_sx_);
  return mgr_->rename(next, rename_ns_);
}

BddManager::Ref SymbolicMachine::fixpoint_from(BddManager::Ref init,
                                               bool monolithic) {
  BddManager::Ref frontier = init;
  BddManager::Ref all = init;
  while (frontier != BddManager::kFalse) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reach-iter");
    const BddManager::Ref next =
        monolithic ? image_monolithic(frontier) : image(frontier);
    const BddManager::Ref fresh = mgr_->bdd_and(next, mgr_->bdd_not(all));
    all = mgr_->bdd_or(all, fresh);
    frontier = fresh;
  }
  return all;
}

BddManager::Ref SymbolicMachine::reachable(BddManager::Ref init) {
  return fixpoint_from(init, /*monolithic=*/false);
}

BddManager::Ref SymbolicMachine::reachable_monolithic(BddManager::Ref init) {
  return fixpoint_from(init, /*monolithic=*/true);
}

BddManager::Ref SymbolicMachine::states_after_delay(unsigned cycles) {
  BddManager::Ref current = all_states();
  for (unsigned k = 0; k < cycles; ++k) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/delay-iter");
    const BddManager::Ref next = image(current);
    if (next == current) break;  // monotone chain hit its fixpoint
    current = next;
  }
  return current;
}

double SymbolicMachine::count_states(BddManager::Ref states) {
  // count_sat ranges over all variables; divide out next-state and input
  // variables (a state set depends only on state variables).
  const double total = mgr_->count_sat(states);
  const double divisor =
      std::pow(2.0, static_cast<double>(num_latches_ + num_inputs_));
  return total / divisor;
}

SymbolicExactSimulator::SymbolicExactSimulator(const Netlist& netlist,
                                               std::size_t node_limit)
    : machine_(netlist, node_limit) {
  BddManager& m = machine_.manager();
  substitution_.resize(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) substitution_[v] = m.var(v);
  reset_all_powerup();
}

void SymbolicExactSimulator::reset_all_powerup() {
  reset_from_ternary(Trits(machine_.num_latches(), Trit::kX));
}

void SymbolicExactSimulator::reset_from_ternary(const Trits& state) {
  RTV_REQUIRE(state.size() == machine_.num_latches(),
              "state vector size mismatch");
  BddManager& m = machine_.manager();
  state_fn_.assign(machine_.num_latches(), BddManager::kFalse);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    switch (state[i]) {
      case Trit::kZero:
        state_fn_[i] = BddManager::kFalse;
        break;
      case Trit::kOne:
        state_fn_[i] = BddManager::kTrue;
        break;
      case Trit::kX:
        state_fn_[i] = m.var(machine_.state_var(i));
        break;
    }
  }
}

Trits SymbolicExactSimulator::step(const Bits& inputs) {
  RTV_REQUIRE(inputs.size() == machine_.num_inputs(),
              "input vector size mismatch");
  BddManager& m = machine_.manager();
  // Substitute each state variable by the current symbolic latch value and
  // each input variable by this cycle's constant. Every state/input slot is
  // overwritten below, so the hoisted vector needs no re-initialisation.
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    substitution_[machine_.state_var(i)] = state_fn_[i];
  }
  for (unsigned j = 0; j < machine_.num_inputs(); ++j) {
    substitution_[machine_.input_var(j)] =
        inputs[j] != 0 ? BddManager::kTrue : BddManager::kFalse;
  }

  Trits outs(machine_.num_outputs(), Trit::kX);
  for (unsigned j = 0; j < machine_.num_outputs(); ++j) {
    const BddManager::Ref f =
        m.compose(machine_.output_function(j), substitution_);
    if (f == BddManager::kTrue) {
      outs[j] = Trit::kOne;
    } else if (f == BddManager::kFalse) {
      outs[j] = Trit::kZero;
    }
  }
  std::vector<BddManager::Ref> next(machine_.num_latches());
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    next[i] = m.compose(machine_.next_function(i), substitution_);
  }
  state_fn_ = std::move(next);
  return outs;
}

TritsSeq SymbolicExactSimulator::run(const BitsSeq& inputs) {
  TritsSeq outs;
  outs.reserve(inputs.size());
  for (const Bits& in : inputs) outs.push_back(step(in));
  return outs;
}

Trits SymbolicExactSimulator::state_abstraction() const {
  Trits result(machine_.num_latches(), Trit::kX);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    if (state_fn_[i] == BddManager::kTrue) {
      result[i] = Trit::kOne;
    } else if (state_fn_[i] == BddManager::kFalse) {
      result[i] = Trit::kZero;
    }
  }
  return result;
}

bool symbolically_equivalent_from(const Netlist& a, const Bits& state_a,
                                  const Netlist& b, const Bits& state_b,
                                  std::size_t node_limit) {
  const Miter miter = build_miter(a, b);
  SymbolicMachine machine(miter.netlist, node_limit);
  Bits joint = state_a;
  joint.insert(joint.end(), state_b.begin(), state_b.end());
  const BddManager::Ref reach = machine.reachable(machine.state_cube(joint));
  // Disagreement: some reachable state and input with neq = 1.
  const BddManager::Ref bad =
      machine.manager().bdd_and(reach, machine.output_function(0));
  return bad == BddManager::kFalse;
}

}  // namespace rtv
