#include "bdd/symbolic.hpp"

#include <cmath>

#include "core/miter.hpp"
#include "sim/port_map.hpp"
#include "util/bits.hpp"

namespace rtv {

SymbolicMachine::SymbolicMachine(const Netlist& netlist,
                                 std::size_t node_limit,
                                 ResourceBudget* budget)
    : budget_(budget),
      num_latches_(static_cast<unsigned>(netlist.latches().size())),
      num_inputs_(static_cast<unsigned>(netlist.primary_inputs().size())),
      num_outputs_(static_cast<unsigned>(netlist.primary_outputs().size())) {
  RTV_REQUIRE(num_latches_ <= 256 && num_inputs_ <= 256,
              "SymbolicMachine capacity exceeded");
  mgr_ = std::make_unique<BddManager>(2 * num_latches_ + num_inputs_,
                                      node_limit);
  mgr_->set_budget(budget_);
  BddManager& m = *mgr_;

  // Evaluate the combinational cones over per-port BDDs.
  const PortMap ports(netlist);
  std::vector<BddManager::Ref> values(ports.size(), BddManager::kFalse);
  std::vector<std::uint32_t> io_pos(netlist.num_slots(), 0);
  const auto fill = [&](const std::vector<NodeId>& ids) {
    for (std::uint32_t i = 0; i < ids.size(); ++i) io_pos[ids[i].value] = i;
  };
  fill(netlist.primary_inputs());
  fill(netlist.primary_outputs());
  fill(netlist.latches());

  out_fn_.assign(num_outputs_, BddManager::kFalse);
  next_fn_.assign(num_latches_, BddManager::kFalse);

  for (const NodeId id : combinational_topo_order(netlist)) {
    const Node& n = netlist.node(id);
    const std::uint32_t base = ports.index(PortRef(id, 0));
    const auto value_of = [&](PortRef p) { return values[ports.index(p)]; };
    switch (n.kind) {
      case CellKind::kInput:
        values[base] = m.var(input_var(io_pos[id.value]));
        break;
      case CellKind::kLatch:
        values[base] = m.var(state_var(io_pos[id.value]));
        break;
      case CellKind::kOutput:
        out_fn_[io_pos[id.value]] = value_of(n.fanin[0]);
        break;
      case CellKind::kConst0:
        values[base] = BddManager::kFalse;
        break;
      case CellKind::kConst1:
        values[base] = BddManager::kTrue;
        break;
      case CellKind::kBuf:
        values[base] = value_of(n.fanin[0]);
        break;
      case CellKind::kNot:
        values[base] = m.bdd_not(value_of(n.fanin[0]));
        break;
      case CellKind::kAnd:
      case CellKind::kNand: {
        BddManager::Ref acc = BddManager::kTrue;
        for (const PortRef& d : n.fanin) acc = m.bdd_and(acc, value_of(d));
        values[base] = n.kind == CellKind::kNand ? m.bdd_not(acc) : acc;
        break;
      }
      case CellKind::kOr:
      case CellKind::kNor: {
        BddManager::Ref acc = BddManager::kFalse;
        for (const PortRef& d : n.fanin) acc = m.bdd_or(acc, value_of(d));
        values[base] = n.kind == CellKind::kNor ? m.bdd_not(acc) : acc;
        break;
      }
      case CellKind::kXor:
      case CellKind::kXnor: {
        BddManager::Ref acc = BddManager::kFalse;
        for (const PortRef& d : n.fanin) acc = m.bdd_xor(acc, value_of(d));
        values[base] = n.kind == CellKind::kXnor ? m.bdd_not(acc) : acc;
        break;
      }
      case CellKind::kMux:
        values[base] = m.ite(value_of(n.fanin[0]), value_of(n.fanin[2]),
                             value_of(n.fanin[1]));
        break;
      case CellKind::kJunc: {
        const BddManager::Ref v = value_of(n.fanin[0]);
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          values[base + p] = v;
        }
        break;
      }
      case CellKind::kTable: {
        // Minterm expansion per output.
        const TruthTable& t = netlist.table(n.table);
        std::vector<BddManager::Ref> pins(n.num_pins());
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          pins[pin] = value_of(n.fanin[pin]);
        }
        for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
          BddManager::Ref acc = BddManager::kFalse;
          for (std::uint64_t x = 0; x < pow2(n.num_pins()); ++x) {
            if (!t.eval_bit(x, p)) continue;
            BddManager::Ref term = BddManager::kTrue;
            for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
              term = m.bdd_and(
                  term, get_bit(x, pin) ? pins[pin] : m.bdd_not(pins[pin]));
            }
            acc = m.bdd_or(acc, term);
          }
          values[base + p] = acc;
        }
        break;
      }
    }
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    const Node& latch = netlist.node(netlist.latches()[i]);
    next_fn_[i] = values[ports.index(latch.fanin[0])];
  }

  // T(s, x, s') = AND_i (s'_i XNOR f_i(s, x)).
  transition_ = BddManager::kTrue;
  for (unsigned i = 0; i < num_latches_; ++i) {
    transition_ = m.bdd_and(
        transition_, m.bdd_xnor(m.var(next_var(i)), next_fn_[i]));
  }

  for (unsigned i = 0; i < num_latches_; ++i) {
    quantify_sx_.push_back(state_var(i));
  }
  for (unsigned j = 0; j < num_inputs_; ++j) {
    quantify_sx_.push_back(input_var(j));
  }
  rename_ns_.resize(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) rename_ns_[v] = v;
  for (unsigned i = 0; i < num_latches_; ++i) {
    rename_ns_[next_var(i)] = state_var(i);
  }
}

BddManager::Ref SymbolicMachine::state_cube(const Bits& state) {
  RTV_REQUIRE(state.size() == num_latches_, "state vector size mismatch");
  BddManager::Ref cube = BddManager::kTrue;
  for (unsigned i = 0; i < num_latches_; ++i) {
    cube = mgr_->bdd_and(cube, state[i] != 0 ? mgr_->var(state_var(i))
                                             : mgr_->nvar(state_var(i)));
  }
  return cube;
}

BddManager::Ref SymbolicMachine::image(BddManager::Ref states) {
  const BddManager::Ref conj = mgr_->bdd_and(states, transition_);
  const BddManager::Ref next = mgr_->exists(conj, quantify_sx_);
  return mgr_->rename(next, rename_ns_);
}

BddManager::Ref SymbolicMachine::reachable(BddManager::Ref init) {
  BddManager::Ref frontier = init;
  BddManager::Ref all = init;
  while (frontier != BddManager::kFalse) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/reach-iter");
    const BddManager::Ref next = image(frontier);
    const BddManager::Ref fresh = mgr_->bdd_and(next, mgr_->bdd_not(all));
    all = mgr_->bdd_or(all, fresh);
    frontier = fresh;
  }
  return all;
}

BddManager::Ref SymbolicMachine::states_after_delay(unsigned cycles) {
  BddManager::Ref current = all_states();
  for (unsigned k = 0; k < cycles; ++k) {
    if (budget_ != nullptr) budget_->checkpoint_or_throw("bdd/delay-iter");
    const BddManager::Ref next = image(current);
    if (next == current) break;  // monotone chain hit its fixpoint
    current = next;
  }
  return current;
}

double SymbolicMachine::count_states(BddManager::Ref states) {
  // count_sat ranges over all variables; divide out next-state and input
  // variables (a state set depends only on state variables).
  const double total = mgr_->count_sat(states);
  const double divisor =
      std::pow(2.0, static_cast<double>(num_latches_ + num_inputs_));
  return total / divisor;
}

SymbolicExactSimulator::SymbolicExactSimulator(const Netlist& netlist,
                                               std::size_t node_limit)
    : machine_(netlist, node_limit) {
  reset_all_powerup();
}

void SymbolicExactSimulator::reset_all_powerup() {
  reset_from_ternary(Trits(machine_.num_latches(), Trit::kX));
}

void SymbolicExactSimulator::reset_from_ternary(const Trits& state) {
  RTV_REQUIRE(state.size() == machine_.num_latches(),
              "state vector size mismatch");
  BddManager& m = machine_.manager();
  state_fn_.assign(machine_.num_latches(), BddManager::kFalse);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    switch (state[i]) {
      case Trit::kZero:
        state_fn_[i] = BddManager::kFalse;
        break;
      case Trit::kOne:
        state_fn_[i] = BddManager::kTrue;
        break;
      case Trit::kX:
        state_fn_[i] = m.var(machine_.state_var(i));
        break;
    }
  }
}

Trits SymbolicExactSimulator::step(const Bits& inputs) {
  RTV_REQUIRE(inputs.size() == machine_.num_inputs(),
              "input vector size mismatch");
  BddManager& m = machine_.manager();
  // Substitute each state variable by the current symbolic latch value and
  // each input variable by this cycle's constant.
  std::vector<BddManager::Ref> substitution(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) substitution[v] = m.var(v);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    substitution[machine_.state_var(i)] = state_fn_[i];
  }
  for (unsigned j = 0; j < machine_.num_inputs(); ++j) {
    substitution[machine_.input_var(j)] =
        inputs[j] != 0 ? BddManager::kTrue : BddManager::kFalse;
  }

  Trits outs(machine_.num_outputs(), Trit::kX);
  for (unsigned j = 0; j < machine_.num_outputs(); ++j) {
    const BddManager::Ref f =
        m.compose(machine_.output_function(j), substitution);
    if (f == BddManager::kTrue) {
      outs[j] = Trit::kOne;
    } else if (f == BddManager::kFalse) {
      outs[j] = Trit::kZero;
    }
  }
  std::vector<BddManager::Ref> next(machine_.num_latches());
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    next[i] = m.compose(machine_.next_function(i), substitution);
  }
  state_fn_ = std::move(next);
  return outs;
}

TritsSeq SymbolicExactSimulator::run(const BitsSeq& inputs) {
  TritsSeq outs;
  outs.reserve(inputs.size());
  for (const Bits& in : inputs) outs.push_back(step(in));
  return outs;
}

Trits SymbolicExactSimulator::state_abstraction() const {
  Trits result(machine_.num_latches(), Trit::kX);
  for (unsigned i = 0; i < machine_.num_latches(); ++i) {
    if (state_fn_[i] == BddManager::kTrue) {
      result[i] = Trit::kOne;
    } else if (state_fn_[i] == BddManager::kFalse) {
      result[i] = Trit::kZero;
    }
  }
  return result;
}

bool symbolically_equivalent_from(const Netlist& a, const Bits& state_a,
                                  const Netlist& b, const Bits& state_b,
                                  std::size_t node_limit) {
  const Miter miter = build_miter(a, b);
  SymbolicMachine machine(miter.netlist, node_limit);
  Bits joint = state_a;
  joint.insert(joint.end(), state_b.begin(), state_b.end());
  const BddManager::Ref reach = machine.reachable(machine.state_cube(joint));
  // Disagreement: some reachable state and input with neq = 1.
  const BddManager::Ref bad =
      machine.manager().bdd_and(reach, machine.output_function(0));
  return bad == BddManager::kFalse;
}

}  // namespace rtv
