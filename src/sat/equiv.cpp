#include "sat/equiv.hpp"

#include <sstream>

#include "aig/cls_encode.hpp"
#include "aig/compile.hpp"
#include "netlist/miter.hpp"
#include "sat/solver.hpp"
#include "sat/unroll.hpp"

namespace rtv {

namespace {

/// Distinguishing input sequence from a BMC model at depth k: read the
/// dual-rail PI assignment of every frame and decode ((1,1) is X by the
/// masked input semantics).
TritsSeq extract_counterexample(const sat::Solver& solver,
                                sat::Unroller& bmc,
                                std::size_t original_inputs,
                                std::size_t depth) {
  TritsSeq seq;
  seq.reserve(depth + 1);
  for (std::size_t t = 0; t <= depth; ++t) {
    Bits rails(2 * original_inputs, 0);
    for (std::size_t i = 0; i < 2 * original_inputs; ++i) {
      const sat::Lit l = bmc.input_lit(i, t);
      const bool value = solver.model_value(sat::var_of(l)) !=
                         sat::sign_of(l);
      rails[i] = value ? 1 : 0;
    }
    seq.push_back(decode_trits(rails));
  }
  return seq;
}

}  // namespace

SatClsOutcome sat_cls_equivalence(const Netlist& a, const Netlist& b,
                                  const SatEquivOptions& options,
                                  ResourceBudget* budget) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "designs differ in primary input count");
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size(),
              "designs differ in primary output count");

  SatClsOutcome outcome;
  const auto finish = [&](sat::Solver& s1, sat::Solver* s2) {
    outcome.conflicts = s1.stats().conflicts;
    outcome.decisions = s1.stats().decisions;
    outcome.propagations = s1.stats().propagations;
    if (s2 != nullptr) {
      outcome.conflicts += s2->stats().conflicts;
      outcome.decisions += s2->stats().decisions;
      outcome.propagations += s2->stats().propagations;
    }
    return outcome;
  };

  const ClsEncoding enc_a = cls_encode(a);
  const ClsEncoding enc_b = cls_encode(b);
  const Miter miter = build_miter(enc_a.netlist, enc_b.netlist);

  Bits init = enc_a.all_x_state();
  const Bits init_b = enc_b.all_x_state();
  init.insert(init.end(), init_b.begin(), init_b.end());

  Aig aig;
  try {
    aig = aig_from_netlist(miter.netlist, init, budget);
  } catch (const ResourceExhausted&) {
    outcome.equivalent = true;
    outcome.verdict = Verdict::kExhausted;
    outcome.note = "budget exhausted while compiling the miter AIG";
    return outcome;
  }

  sat::Solver bmc_solver;
  sat::Unroller bmc(aig, bmc_solver, /*constrain_init=*/true);

  const bool use_induction = options.max_induction_depth > 0;
  sat::Solver ind_solver;
  sat::Unroller ind(aig, ind_solver, /*constrain_init=*/false);
  if (use_induction) {
    // Normalization invariant of every reachable encoded state: the rails
    // of a latch pair are never (1,1). Latches come in consecutive (d, u)
    // pairs — cls_encode creates them adjacently and build_miter keeps
    // each design's latch block contiguous with even size.
    for (std::size_t i = 0; i + 1 < aig.num_latches(); i += 2) {
      ind_solver.add_clause({sat::neg(ind.latch_lit(i, 0)),
                             sat::neg(ind.latch_lit(i + 1, 0))});
    }
  }

  bool induction_alive = use_induction;
  for (unsigned k = 0; k <= options.max_depth; ++k) {
    if (budget != nullptr && !budget->checkpoint("sat/bmc-depth")) {
      outcome.equivalent = true;
      outcome.verdict = Verdict::kExhausted;
      outcome.note = "budget exhausted before BMC depth " +
                     std::to_string(k);
      return finish(bmc_solver, &ind_solver);
    }

    const sat::Lit bad = bmc.output_lit(0, k);
    const sat::Solver::Result r =
        bmc_solver.solve({bad}, budget, options.conflict_limit);
    if (r == sat::Solver::Result::kSat) {
      outcome.equivalent = false;
      outcome.verdict = Verdict::kProven;
      outcome.counterexample =
          extract_counterexample(bmc_solver, bmc, a.primary_inputs().size(), k);
      std::ostringstream os;
      os << "BMC found a distinguishing sequence at depth " << k;
      outcome.note = os.str();
      return finish(bmc_solver, &ind_solver);
    }
    if (r == sat::Solver::Result::kUnknown) {
      outcome.equivalent = true;
      outcome.verdict = Verdict::kExhausted;
      outcome.note = "budget exhausted during BMC at depth " +
                     std::to_string(k);
      return finish(bmc_solver, &ind_solver);
    }
    outcome.depth_reached = k;
    bmc_solver.add_clause({sat::neg(bad)});

    if (induction_alive && k <= options.max_induction_depth) {
      const sat::Lit ibad = ind.output_lit(0, k);
      const sat::Solver::Result ri =
          ind_solver.solve({ibad}, budget, options.conflict_limit);
      if (ri == sat::Solver::Result::kUnsat) {
        // Induction step closed at k; the BMC base case covers depths
        // 0..k, so the property holds on every reachable state.
        outcome.equivalent = true;
        outcome.verdict = Verdict::kProven;
        outcome.induction_depth = k;
        std::ostringstream os;
        os << "k-induction closed at k=" << k << " (BMC base through depth "
           << outcome.depth_reached << ")";
        outcome.note = os.str();
        return finish(bmc_solver, &ind_solver);
      }
      if (ri == sat::Solver::Result::kUnknown) {
        if (budget != nullptr && budget->exhausted()) {
          outcome.equivalent = true;
          outcome.verdict = Verdict::kExhausted;
          outcome.note = "budget exhausted during induction at k=" +
                         std::to_string(k);
          return finish(bmc_solver, &ind_solver);
        }
        induction_alive = false;  // conflict cap: keep BMC deepening
      } else {
        // SAT: the hypothesis "clean for k frames" does not yet close;
        // adding !bad_k as a fact of the induction system is exactly the
        // k+1 hypothesis strengthening.
        ind_solver.add_clause({sat::neg(ibad)});
      }
    }
  }

  outcome.equivalent = true;
  outcome.verdict = Verdict::kBounded;
  std::ostringstream os;
  os << "no difference within " << (options.max_depth + 1)
     << " cycles (BMC depth cap); induction "
     << (use_induction ? "did not close" : "disabled");
  outcome.note = os.str();
  return finish(bmc_solver, &ind_solver);
}

}  // namespace rtv
