#pragma once
// Time-frame expansion of an AIG into a Solver's CNF via Tseitin encoding.
// Frames are built lazily: asking for a literal at frame t materializes
// frames 0..t. Latches at frame t > 0 take the solver literal of their
// next-state function at frame t-1; at frame 0 they are either pinned to
// their power-up constants (BMC from the initial state) or left as free
// variables (the induction unroller, where any state may start a trace).
//
// Each AND node contributes the three Tseitin clauses
//   (!f | a) (!f | b) (f | !a | !b)
// per frame; structural hashing in the Aig already deduplicated the logic,
// so no CNF-level simplification is attempted beyond the solver's own
// level-0 propagation of the pinned constants.

#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace rtv::sat {

class Unroller {
 public:
  /// `constrain_init` pins frame-0 latches to their AIG power-up constants;
  /// otherwise frame-0 latches are free variables.
  Unroller(const Aig& aig, Solver& solver, bool constrain_init);

  /// Solver literal of AIG literal `lit` at frame `t` (builds frames on
  /// demand).
  Lit lit_at(Aig::Lit lit, std::size_t t);

  Lit output_lit(std::size_t output, std::size_t t) {
    return lit_at(aig_.output(output), t);
  }
  Lit input_lit(std::size_t input, std::size_t t) {
    return lit_at(Aig::make_lit(aig_.input_var(input), false), t);
  }
  Lit latch_lit(std::size_t latch, std::size_t t) {
    return lit_at(Aig::make_lit(aig_.latch_var(latch), false), t);
  }

  std::size_t frames_built() const { return frames_.size(); }

 private:
  void build_frame(std::size_t t);

  const Aig& aig_;
  Solver& solver_;
  bool constrain_init_;
  Lit const_true_;  // solver literal pinned true (frame-independent)
  /// frames_[t][var] = solver literal of AIG var at frame t.
  std::vector<std::vector<Lit>> frames_;
};

}  // namespace rtv::sat
