#include "sat/solver.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rtv::sat {

// ---- VarOrder --------------------------------------------------------------

void Solver::VarOrder::up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    pos_[heap_[i]] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  pos_[v] = static_cast<int>(i);
}

void Solver::VarOrder::down(std::size_t i) {
  const Var v = heap_[i];
  while (2 * i + 1 < heap_.size()) {
    std::size_t child = 2 * i + 1;
    if (child + 1 < heap_.size() && less(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    pos_[heap_[i]] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  pos_[v] = static_cast<int>(i);
}

void Solver::VarOrder::insert(Var v) {
  if (contains(v)) return;
  heap_.push_back(v);
  pos_[v] = static_cast<int>(heap_.size() - 1);
  up(heap_.size() - 1);
}

void Solver::VarOrder::bumped(Var v) {
  if (contains(v)) up(static_cast<std::size_t>(pos_[v]));
}

Var Solver::VarOrder::pop_max() {
  const Var top = heap_.front();
  pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    pos_[last] = 0;
    down(0);
  }
  return top;
}

// ---- Solver ----------------------------------------------------------------

Solver::Solver() : order_(activity_) {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(value_.size());
  value_.push_back(-1);
  polarity_.push_back(1);  // default phase: false
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.grow();
  order_.insert(v);
  return v;
}

void Solver::attach(std::uint32_t ref) {
  const Clause& c = clauses_[ref];
  watches_[c.lits[0]].push_back(ref);
  watches_[c.lits[1]].push_back(ref);
}

void Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return;
  RTV_CHECK_MSG(decision_level() == 0, "add_clause above decision level 0");
  // Normalize: sort, dedupe, drop tautologies and level-0-false literals.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (const Lit l : lits) {
    RTV_REQUIRE(var_of(l) < num_vars(), "clause literal out of range");
    if (!out.empty() && out.back() == l) continue;
    if (!out.empty() && out.back() == neg(l)) return;  // tautology
    const int8_t v = value_lit(l);
    if (v == 0) return;       // already satisfied at level 0
    if (v == 1) continue;     // false at level 0: drop the literal
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) ok_ = false;
    return;
  }
  clauses_.push_back(Clause{std::move(out)});
  attach(static_cast<std::uint32_t>(clauses_.size() - 1));
}

void Solver::enqueue(Lit l, std::uint32_t reason) {
  const Var v = var_of(l);
  value_[v] = static_cast<int8_t>(l & 1u);
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = neg(p);
    std::vector<std::uint32_t>& watch_list = watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::uint32_t ref = watch_list[i];
      Clause& c = clauses_[ref];
      // Ensure the false literal sits in slot 1.
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      if (value_lit(c.lits[0]) == 0) {
        watch_list[keep++] = ref;  // satisfied: keep the watch
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t j = 2; j < c.lits.size(); ++j) {
        if (value_lit(c.lits[j]) != 1) {
          std::swap(c.lits[1], c.lits[j]);
          watches_[c.lits[1]].push_back(ref);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = ref;
      if (value_lit(c.lits[0]) == 1) {
        // Conflict: restore the remaining watches and report.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ref;
      }
      enqueue(c.lits[0], ref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::bump_activity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.bumped(v);
}

void Solver::decay_activities() { var_inc_ *= (1.0 / 0.95); }

void Solver::analyze(std::uint32_t confl, std::vector<Lit>& learnt,
                     unsigned& bt_level) {
  learnt.clear();
  learnt.push_back(kLitUndef);  // slot for the asserting (first-UIP) literal
  unsigned path_count = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  std::vector<Var> to_clear;

  do {
    RTV_CHECK_MSG(confl != kNoReason, "conflict analysis lost its reason");
    const Clause& c = clauses_[confl];
    for (std::size_t j = (p == kLitUndef ? 0 : 1); j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      const Var v = var_of(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        to_clear.push_back(v);
        bump_activity(v);
        if (level_[v] >= decision_level()) {
          ++path_count;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk back to the next marked trail literal.
    while (seen_[var_of(trail_[--index])] == 0) {
    }
    p = trail_[index];
    confl = reason_[var_of(p)];
    seen_[var_of(p)] = 0;
    --path_count;
  } while (path_count > 0);
  learnt[0] = neg(p);

  // Backtrack level: highest level among the non-asserting literals; put
  // one literal of that level in slot 1 so it is watched.
  bt_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[var_of(learnt[i])] > level_[var_of(learnt[max_i])]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[var_of(learnt[1])];
  }
  for (const Var v : to_clear) seen_[v] = 0;
}

void Solver::record_learnt(std::vector<Lit> learnt) {
  ++stats_.learnt_clauses;
  if (learnt.size() == 1) {
    enqueue(learnt[0], kNoReason);
    return;
  }
  clauses_.push_back(Clause{std::move(learnt)});
  const std::uint32_t ref = static_cast<std::uint32_t>(clauses_.size() - 1);
  attach(ref);
  enqueue(clauses_[ref].lits[0], ref);
}

void Solver::cancel_until(unsigned level) {
  if (decision_level() <= level) return;
  const std::size_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = var_of(trail_[i]);
    polarity_[v] = static_cast<std::uint8_t>(value_[v]);
    value_[v] = -1;
    reason_[v] = kNoReason;
    order_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
  while (!order_.empty()) {
    // pop_max is safe here: order_ only empties when all vars are assigned.
    Var v = order_.pop_max();
    if (value_[v] < 0) return mk_lit(v, polarity_[v] != 0);
  }
  return kLitUndef;
}

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t x) {
  std::uint64_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return 1ULL << seq;
}

}  // namespace

Solver::Result Solver::solve(const std::vector<Lit>& assumptions,
                             ResourceBudget* budget,
                             std::uint64_t conflict_limit) {
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) {
    RTV_REQUIRE(var_of(a) < num_vars(), "assumption literal out of range");
  }

  std::uint64_t conflicts_this_call = 0;
  std::uint64_t restart_base = 100;
  std::uint64_t conflicts_until_restart = restart_base * luby(0);
  std::uint64_t restart_index = 0;
  std::vector<Lit> learnt;

  const auto finish = [&](Result r) {
    cancel_until(0);
    return r;
  };

  if (propagate() != kNoReason) {
    ok_ = false;
    return finish(Result::kUnsat);
  }

  for (;;) {
    const std::uint32_t confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      if (decision_level() == 0) {
        ok_ = false;
        return finish(Result::kUnsat);
      }
      unsigned bt_level = 0;
      analyze(confl, learnt, bt_level);
      cancel_until(bt_level);
      record_learnt(std::move(learnt));
      learnt = {};
      decay_activities();

      if (conflict_limit != 0 && conflicts_this_call >= conflict_limit) {
        return finish(Result::kUnknown);
      }
      if (budget != nullptr &&
          conflicts_this_call % kBudgetCheckInterval == 0 &&
          !budget->checkpoint("sat/conflict")) {
        return finish(Result::kUnknown);
      }
      if (conflicts_this_call >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_index;
        conflicts_until_restart =
            conflicts_this_call + restart_base * luby(restart_index);
        cancel_until(0);
      }
      continue;
    }

    if (decision_level() < assumptions.size()) {
      const Lit a = assumptions[decision_level()];
      const int8_t v = value_lit(a);
      if (v == 1) return finish(Result::kUnsat);  // assumption already false
      new_decision_level();
      if (v < 0) {
        ++stats_.decisions;
        enqueue(a, kNoReason);
      }
      continue;
    }

    const Lit next = pick_branch();
    if (next == kLitUndef) {
      model_ = value_;
      return finish(Result::kSat);
    }
    ++stats_.decisions;
    new_decision_level();
    enqueue(next, kNoReason);
  }
}

bool Solver::model_value(Var v) const {
  RTV_REQUIRE(v < model_.size(), "model_value before a kSat solve");
  return model_[v] == 0;
}

}  // namespace rtv::sat
