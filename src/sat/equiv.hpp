#pragma once
// SAT-based CLS-equivalence (the ROADMAP's "second backend"): both designs
// are dual-rail encoded (aig/cls_encode.hpp), their encodings mitered and
// compiled to an AIG, and the single "neq" output checked over the unrolled
// time frames with a CDCL solver:
//
//  * BMC — frames from the all-X initial state ((d,u) = (0,1) per latch).
//    SAT at depth k yields a concrete distinguishing ternary input sequence
//    (definitive: the pair is CLS-distinguishable); UNSAT advances.
//  * k-induction — a second, free-initial-state unroller. If
//    "neq clean for k frames, neq at frame k+0" is unsatisfiable from ANY
//    state, then together with the BMC base case the designs are
//    CLS-equivalent on every input sequence (definitive proof). Frame-0
//    states are constrained with the dual-rail normalization invariant
//    (!(d & u) per latch pair) — an invariant of every reachable encoded
//    state that substantially strengthens induction. No uniqueness
//    constraints are added, so induction may fail to converge (incomplete
//    but sound); BMC keeps deepening until max_depth.
//
// Verdict mapping: cex -> kProven (not equivalent); induction closes ->
// kProven (equivalent); depth cap hit -> kBounded (equivalent-so-far
// evidence); budget/conflict caps tripped -> kExhausted.

#include <optional>
#include <string>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"

namespace rtv {

struct SatEquivOptions {
  /// Maximum BMC depth (frames - 1); depth d checks sequences of d+1 input
  /// vectors.
  unsigned max_depth = 64;
  /// Try to close the proof by k-induction up to this k (0 disables).
  unsigned max_induction_depth = 32;
  /// Per-solve conflict cap (0 = unlimited; the ResourceBudget still
  /// governs).
  std::uint64_t conflict_limit = 0;
};

struct SatClsOutcome {
  bool equivalent = false;
  Verdict verdict = Verdict::kBounded;
  std::optional<TritsSeq> counterexample;
  /// Deepest frame proven difference-free by BMC.
  unsigned depth_reached = 0;
  /// k at which induction closed (meaningful when proven equivalent).
  unsigned induction_depth = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  /// Human-readable account of how the verdict was reached.
  std::string note;
};

/// Requires equal PI and PO counts. With a budget attached the search
/// degrades to kExhausted instead of throwing when the budget blows.
SatClsOutcome sat_cls_equivalence(const Netlist& a, const Netlist& b,
                                  const SatEquivOptions& options = {},
                                  ResourceBudget* budget = nullptr);

}  // namespace rtv
