#pragma once
// Small CDCL SAT solver — the decision engine of the AIG/SAT equivalence
// backend. Classic MiniSat-style architecture, sized for the unrolled-miter
// CNFs the Tseitin encoder produces:
//
//  * two-literal watching with lazy watch repair in propagate();
//  * first-UIP conflict clause learning;
//  * VSIDS-lite branching (exponentially decayed per-variable activity in
//    an indexed max-heap) with phase saving;
//  * Luby-sequence restarts;
//  * incremental solving under assumptions: solve() re-decides the
//    assumption prefix after every restart/backjump, clauses may be added
//    between calls, learnt clauses persist.
//
// Resource governance: solve() probes a ResourceBudget (deadline,
// cancellation, step quota, fault injection) every kBudgetCheckInterval
// conflicts and honours an optional per-call conflict cap; both degrade to
// Result::kUnknown, never an exception. Learnt clauses are kept for the
// lifetime of the solver (no database reduction) — the budget and conflict
// caps bound memory in practice for the BMC/induction workloads this
// serves.

#include <cstdint>
#include <vector>

#include "util/budget.hpp"

namespace rtv::sat {

using Var = std::uint32_t;
/// Literal encoding: 2 * var + sign (sign 1 = negated).
using Lit = std::uint32_t;

inline constexpr Lit kLitUndef = 0xffffffffu;

constexpr Lit mk_lit(Var v, bool negated = false) {
  return 2 * v + (negated ? 1u : 0u);
}
constexpr Var var_of(Lit l) { return l >> 1; }
constexpr bool sign_of(Lit l) { return (l & 1u) != 0; }
constexpr Lit neg(Lit l) { return l ^ 1u; }

class Solver {
 public:
  enum class Result { kSat, kUnsat, kUnknown };

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnt_clauses = 0;
  };

  Solver();

  Var new_var();
  std::size_t num_vars() const { return value_.size(); }

  /// Adds a clause (top level). Duplicate and level-0-false literals are
  /// removed, tautologies and already-satisfied clauses dropped. An empty
  /// clause (or a unit contradicting a level-0 assignment) makes the solver
  /// permanently unsatisfiable (okay() == false).
  void add_clause(std::vector<Lit> lits);

  /// Solves under the given assumptions. `conflict_limit` (0 = none) caps
  /// the conflicts of THIS call; the budget (nullptr = ungoverned) is
  /// probed at conflict checkpoints. Returns kUnknown when either trips.
  /// kUnsat means the clauses are unsatisfiable together with the
  /// assumptions (permanently so iff okay() is false afterwards).
  Result solve(const std::vector<Lit>& assumptions = {},
               ResourceBudget* budget = nullptr,
               std::uint64_t conflict_limit = 0);

  /// Model access, valid after solve() returned kSat.
  bool model_value(Var v) const;

  bool okay() const { return ok_; }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::uint32_t kNoReason = 0xffffffffu;
  static constexpr std::uint64_t kBudgetCheckInterval = 256;

  struct Clause {
    std::vector<Lit> lits;
  };

  // Indexed max-heap over activity_ (VSIDS-lite order).
  class VarOrder {
   public:
    explicit VarOrder(const std::vector<double>& activity)
        : activity_(activity) {}
    void grow() { pos_.push_back(-1); }
    bool empty() const { return heap_.empty(); }
    bool contains(Var v) const { return pos_[v] >= 0; }
    void insert(Var v);
    void bumped(Var v);  // percolate up after an activity increase
    Var pop_max();

   private:
    bool less(Var a, Var b) const { return activity_[a] < activity_[b]; }
    void up(std::size_t i);
    void down(std::size_t i);

    const std::vector<double>& activity_;
    std::vector<Var> heap_;
    std::vector<int> pos_;
  };

  int8_t value_lit(Lit l) const {
    const int8_t v = value_[var_of(l)];
    return v < 0 ? v : static_cast<int8_t>(v ^ static_cast<int8_t>(l & 1u));
  }
  unsigned decision_level() const {
    return static_cast<unsigned>(trail_lim_.size());
  }

  void enqueue(Lit l, std::uint32_t reason);
  std::uint32_t propagate();  // returns conflicting clause or kNoReason
  void analyze(std::uint32_t confl, std::vector<Lit>& learnt,
               unsigned& bt_level);
  void record_learnt(std::vector<Lit> learnt);
  void new_decision_level() { trail_lim_.push_back(trail_.size()); }
  void cancel_until(unsigned level);
  void bump_activity(Var v);
  void decay_activities();
  Lit pick_branch();
  void attach(std::uint32_t ref);

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;  // per literal
  std::vector<int8_t> value_;        // per var: -1 undef, 0 true, 1 false
  std::vector<std::uint8_t> polarity_;  // saved phase (1 = last was false)
  std::vector<unsigned> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  VarOrder order_;
  std::vector<std::uint8_t> seen_;
  std::vector<int8_t> model_;
  Stats stats_;
};

}  // namespace rtv::sat
