#include "sat/unroll.hpp"

namespace rtv::sat {

Unroller::Unroller(const Aig& aig, Solver& solver, bool constrain_init)
    : aig_(aig), solver_(solver), constrain_init_(constrain_init) {
  const Var t = solver_.new_var();
  solver_.add_clause({mk_lit(t, false)});
  const_true_ = mk_lit(t, false);
}

Lit Unroller::lit_at(Aig::Lit lit, std::size_t t) {
  while (frames_.size() <= t) build_frame(frames_.size());
  const Lit base = frames_[t][Aig::lit_var(lit)];
  return Aig::lit_negated(lit) ? neg(base) : base;
}

void Unroller::build_frame(std::size_t t) {
  std::vector<Lit>& frame = frames_.emplace_back();
  frame.resize(aig_.num_vars(), kLitUndef);

  // AND fanin variables always precede the AND, so one index-order walk
  // sees every variable after its drivers. Latch nexts reference the
  // PREVIOUS frame, which is complete by construction.
  std::vector<std::size_t> latch_index(aig_.num_vars(), 0);
  for (std::size_t i = 0; i < aig_.num_latches(); ++i) {
    latch_index[aig_.latch_var(i)] = i;
  }

  for (Aig::Var v = 0; v < aig_.num_vars(); ++v) {
    switch (aig_.kind(v)) {
      case Aig::NodeKind::kConst:
        frame[v] = const_true_;  // var 0 positive literal = true
        break;
      case Aig::NodeKind::kInput:
        frame[v] = mk_lit(solver_.new_var(), false);
        break;
      case Aig::NodeKind::kLatch: {
        const std::size_t i = latch_index[v];
        if (t == 0) {
          if (constrain_init_) {
            frame[v] = aig_.latch_init(i) ? const_true_ : neg(const_true_);
          } else {
            frame[v] = mk_lit(solver_.new_var(), false);
          }
        } else {
          const Aig::Lit next = aig_.latch_next(i);
          const Lit prev = frames_[t - 1][Aig::lit_var(next)];
          frame[v] = Aig::lit_negated(next) ? neg(prev) : prev;
        }
        break;
      }
      case Aig::NodeKind::kAnd: {
        const Aig::Lit a_lit = aig_.fanin0(v);
        const Aig::Lit b_lit = aig_.fanin1(v);
        const Lit a = Aig::lit_negated(a_lit) ? neg(frame[Aig::lit_var(a_lit)])
                                              : frame[Aig::lit_var(a_lit)];
        const Lit b = Aig::lit_negated(b_lit) ? neg(frame[Aig::lit_var(b_lit)])
                                              : frame[Aig::lit_var(b_lit)];
        const Lit f = mk_lit(solver_.new_var(), false);
        solver_.add_clause({neg(f), a});
        solver_.add_clause({neg(f), b});
        solver_.add_clause({f, neg(a), neg(b)});
        frame[v] = f;
        break;
      }
    }
  }
}

}  // namespace rtv::sat
