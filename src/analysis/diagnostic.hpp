#pragma once
// Structured diagnostics for the static-analysis subsystem.
//
// Every finding a lint pass makes is a Diagnostic: a stable machine code
// (RTV1xx structural, RTV2xx retiming-plan safety), a severity, an optional
// node/move location, and a human message. Passes accumulate diagnostics
// into a DiagnosticReport instead of throwing on the first problem, so one
// run surfaces everything that is wrong with a design or a plan. The full
// code table lives in docs/lint.md.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

const char* to_string(Severity severity);

/// Stable diagnostic codes. RTV1xx: structural netlist defects. RTV2xx:
/// retiming-plan analysis (paper Section 4). RTV3xx: semantic findings from
/// the ternary dataflow fixpoint (dataflow.hpp). Values are the printed
/// number.
enum class DiagCode : std::uint16_t {
  // -- structural lint (RTV1xx) --------------------------------------------
  kUnconnectedPin = 101,     ///< input pin with no driver
  kMultiDrivenPin = 102,     ///< pin claimed as sink by more than one port
  kBadArity = 103,           ///< pin/port count illegal for the cell kind
  kBadTable = 104,           ///< dangling table id / table arity mismatch
  kBrokenCrossLink = 105,    ///< fanin/fanout disagree or dead references
  kIndexOutOfSync = 106,     ///< PI/PO/latch index vector inconsistent
  kCombinationalCycle = 107, ///< latch-free feedback cycle
  kDanglingPort = 108,       ///< output port drives nothing
  kImplicitFanout = 109,     ///< port with >1 sink (not junction-normal)
  kUnreachableCell = 110,    ///< cell cannot influence any primary output
  // -- retiming-plan analysis (RTV2xx) -------------------------------------
  kUnsafeForwardMove = 201,  ///< forward across non-justifiable (Prop 4.2)
  kMoveNotEnabled = 202,     ///< move not enabled at its plan position
  kBadPlanElement = 203,     ///< plan names a dead/non-combinational node
  kDelayBoundExceeded = 204, ///< Thm 4.5 k above the user bound
  kSettleCertificate = 205,  ///< note: C^k ⊑ D certificate (Thm 4.5/4.6)
  kPlanNotAnalyzable = 206,  ///< netlist fails plan-analysis preconditions
  // -- semantic dataflow lint (RTV3xx) --------------------------------------
  kLatchNeverInitializes = 301,  ///< latch stuck at X in the fixpoint
  kStaticConstant = 302,         ///< signal provably constant on every cycle
  kDeadLogicCone = 303,          ///< unobservable cone (no path to an output)
  kCombinationalScc = 304,       ///< the cells of a latch-free feedback SCC
  kStaticallySafeMove = 305,     ///< unsafe-class move certified safe
};

/// "RTV101", "RTV201", ...
std::string to_string(DiagCode code);

/// One-line title of a code ("unconnected input pin", ...).
const char* diag_code_title(DiagCode code);

/// The severity a code carries unless a pass overrides it.
Severity diag_default_severity(DiagCode code);

/// One finding. `node` is the primary location (invalid when the finding is
/// netlist- or plan-wide); `move_index` is set for plan diagnostics.
struct Diagnostic {
  DiagCode code = DiagCode::kUnconnectedPin;
  Severity severity = Severity::kError;
  NodeId node;
  std::string node_name;            ///< resolved at emit time for rendering
  std::optional<std::size_t> move_index;
  std::string message;
};

/// Accumulator shared by every pass in a lint run.
class DiagnosticReport {
 public:
  void add(Diagnostic diagnostic);

  /// Convenience: default severity, location resolved against `netlist`.
  void add(DiagCode code, const Netlist& netlist, NodeId node,
           std::string message,
           std::optional<std::size_t> move_index = std::nullopt);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }
  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const { return num_warnings_; }
  std::size_t num_notes() const { return num_notes_; }
  bool has_errors() const { return num_errors_ > 0; }

  /// Appends every diagnostic of `other`.
  void merge(const DiagnosticReport& other);

  /// Stable-sorts into the canonical output order — (code, node, move
  /// index), ties kept in emission order — so two runs over the same design
  /// render byte-identically in both the text and JSON renderers.
  void sort_canonical();

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t num_errors_ = 0;
  std::size_t num_warnings_ = 0;
  std::size_t num_notes_ = 0;
};

/// Human-readable rendering, one line per diagnostic plus a summary line:
///   error[RTV101] node 'g': unconnected input pin 1
std::string render_text(const DiagnosticReport& report);

/// One diagnostic as a JSON object (used by the lint JSON renderer).
std::string diagnostic_to_json(const Diagnostic& diagnostic);

}  // namespace rtv
