// The semantic lint family (RTV3xx): findings read off the ternary
// dataflow fixpoint (dataflow.hpp) plus the two structural reports that
// need no fixpoint — dead cones and combinational SCCs. All five passes
// gate on LintOptions::semantic; the three fixpoint passes additionally
// carry needs_dataflow, so the driver defers them until the fixpoint
// exists and drops them when structural errors made it meaningless.

#include <algorithm>

#include "analysis/pass.hpp"

namespace rtv {

namespace {

/// Renders up to `limit` node names for a grouped diagnostic, appending
/// ", ..." when the group is larger.
std::string name_list(const Netlist& netlist, const std::vector<NodeId>& ids,
                      std::size_t limit) {
  std::string out;
  for (std::size_t i = 0; i < ids.size() && i < limit; ++i) {
    if (i > 0) out += ", ";
    out += "'" + netlist.name(ids[i]) + "'";
  }
  if (ids.size() > limit) out += ", ...";
  return out;
}

/// RTV303: maximal unobservable cones, one note per cone. A cone is a
/// connected component (ignoring edge direction) of the subgraph induced by
/// the live unobservable non-input cells, anchored at its smallest NodeId.
/// Complements the per-cell RTV110 warning with the grouped view a user
/// acts on: delete the cone, not a cell at a time.
void dead_cone_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.semantic) return;
  const Netlist& n = ctx.netlist;
  const std::vector<bool> observable = observable_mask(n);

  std::vector<bool> in_cone(n.num_slots(), false);
  std::vector<NodeId> dead_cells;
  for (const NodeId id : n.live_nodes()) {
    if (observable[id.value] || n.kind(id) == CellKind::kInput) continue;
    in_cone[id.value] = true;
    dead_cells.push_back(id);
  }
  if (dead_cells.empty()) return;

  // Flood-fill each component across fanin and fanout edges restricted to
  // cone members. dead_cells is in ascending id order, so each component is
  // discovered from (and anchored at) its smallest member.
  std::vector<bool> visited(n.num_slots(), false);
  for (const NodeId root : dead_cells) {
    if (visited[root.value]) continue;
    std::vector<NodeId> component;
    std::vector<NodeId> stack{root};
    visited[root.value] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      component.push_back(v);
      auto visit = [&](NodeId next) {
        if (!next.valid() || next.value >= n.num_slots()) return;
        if (!in_cone[next.value] || visited[next.value]) return;
        visited[next.value] = true;
        stack.push_back(next);
      };
      const Node& node = n.node(v);
      for (const PortRef& drv : node.fanin) visit(drv.node);
      for (const auto& port_sinks : node.fanout) {
        for (const PinRef& s : port_sinks) visit(s.node);
      }
    }
    std::sort(component.begin(), component.end());
    report.add(DiagCode::kDeadLogicCone, n, component.front(),
               "dead logic cone of " + std::to_string(component.size()) +
                   " cell(s): " + name_list(n, component, 8) +
                   " — no path to any primary output "
                   "(sweep_unobservable() removes the whole cone)");
  }
}

/// RTV304: the cells of every latch-free feedback group, one note per SCC.
/// RTV107 already errors on the existence of a combinational cycle; this
/// note names the members so the user can see the whole loop at once.
void combinational_scc_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.semantic) return;
  const Netlist& n = ctx.netlist;
  for (const std::vector<NodeId>& scc : combinational_sccs(n)) {
    report.add(DiagCode::kCombinationalScc, n, scc.front(),
               "latch-free feedback group of " + std::to_string(scc.size()) +
                   " cell(s): " + name_list(n, scc, 8) +
                   " — every cycle must cross a latch (Section 3.2)");
  }
}

/// RTV301: latches whose fixpoint set is exactly {X} — no input sequence
/// can ever initialize them, so the paper's validity question is vacuous
/// for that state bit.
void latch_init_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.semantic) return;
  const DataflowResult& df = *ctx.dataflow;
  for (const NodeId latch : ctx.netlist.latches()) {
    if (!df.latch_stuck_at_x(latch)) continue;
    report.add(DiagCode::kLatchNeverInitializes, ctx.netlist, latch,
               "latch can never leave X: no input sequence initializes it "
               "from the all-X power-up state, so retiming validity is "
               "vacuous for this state bit (Section 5)");
  }
}

/// RTV302: combinational signals whose fixpoint set is a definite
/// singleton — the signal is that constant on every cycle of every input
/// sequence. Declared constants and junction branches are skipped (the
/// junction only copies what its already-reported driver produces).
void static_constant_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.semantic) return;
  const Netlist& n = ctx.netlist;
  const DataflowResult& df = *ctx.dataflow;
  for (const NodeId id : n.live_nodes()) {
    const CellKind k = n.kind(id);
    if (!is_combinational(k) || k == CellKind::kConst0 ||
        k == CellKind::kConst1 || k == CellKind::kJunc) {
      continue;
    }
    for (std::uint32_t port = 0; port < n.num_ports(id); ++port) {
      const std::optional<bool> value = df.constant_value(PortRef(id, port));
      if (!value) continue;
      std::string where =
          n.num_ports(id) > 1 ? "port " + std::to_string(port) + " " : "";
      report.add(DiagCode::kStaticConstant, n, id,
                 where + "is statically constant " +
                     std::string(*value ? "1" : "0") +
                     " on every cycle of every input sequence "
                     "(propagate_constants() could fold it)");
    }
  }
}

/// RTV305: static safety certificates for the moves RTV201 warned about. A
/// forward move across a non-justifiable element breaks safe replacement
/// in general (Prop 4.2), but three static arguments can still prove the
/// concrete move harmless (see certify_plan_moves); each certified move
/// gets a note telling the user no engine run is needed. Moves that
/// already preserve safe replacement need no certificate, so a clean plan
/// stays clean.
void static_safety_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.semantic) return;
  const PlanAnalysis& analysis = *ctx.plan_analysis;
  if (!analysis.feasible) return;
  bool any_unsafe = false;
  for (const PlanMoveCheck& check : analysis.moves) {
    any_unsafe |= !check.cls.preserves_safe_replacement();
  }
  if (!any_unsafe) return;

  const std::vector<MoveCertificate> certificates =
      certify_plan_moves(ctx.netlist, *ctx.plan);
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    if (!certificates[i].certified) continue;
    if (analysis.moves[i].cls.preserves_safe_replacement()) continue;
    report.add(DiagCode::kStaticallySafeMove, ctx.netlist,
               analysis.moves[i].move.element,
               "statically certified safe: " + certificates[i].reason +
                   "; no engine run needed",
               i);
  }
}

}  // namespace

void register_semantic_passes(std::vector<LintPass>& passes) {
  passes.push_back({"dead-cones",
                    "group unobservable cells into maximal dead cones",
                    /*needs_plan=*/false, dead_cone_pass});
  passes.push_back({"combinational-sccs",
                    "name the cells of every latch-free feedback group",
                    /*needs_plan=*/false, combinational_scc_pass});
  passes.push_back({"latch-initialization",
                    "every latch can leave X from the all-X power-up state",
                    /*needs_plan=*/false, latch_init_pass,
                    /*needs_dataflow=*/true});
  passes.push_back({"static-constants",
                    "no signal is provably constant on every cycle",
                    /*needs_plan=*/false, static_constant_pass,
                    /*needs_dataflow=*/true});
  passes.push_back({"static-move-safety",
                    "certify unsafe-class plan moves without an engine run",
                    /*needs_plan=*/true, static_safety_pass,
                    /*needs_dataflow=*/true});
}

}  // namespace rtv
