#include "analysis/dataflow.hpp"

#include <algorithm>
#include <deque>

#include "netlist/cell.hpp"
#include "ternary/truth_table.hpp"
#include "util/error.hpp"

namespace rtv {

namespace {

constexpr TritSet kSetX = trit_set_of(Trit::kX);

/// Image of a set under a unary ternary function.
TritSet lift1(Trit (*op)(Trit), TritSet a) {
  TritSet r = kTritSetEmpty;
  for (unsigned i = 0; i < 3; ++i) {
    if (a & (1u << i)) r |= trit_set_of(op(static_cast<Trit>(i)));
  }
  return r;
}

/// Image of a pair of sets under a binary ternary function. At most nine
/// concrete evaluations — the exact lift, not an approximation.
TritSet lift2(Trit (*op)(Trit, Trit), TritSet a, TritSet b) {
  TritSet r = kTritSetEmpty;
  for (unsigned i = 0; i < 3; ++i) {
    if (!(a & (1u << i))) continue;
    for (unsigned j = 0; j < 3; ++j) {
      if (!(b & (1u << j))) continue;
      r |= trit_set_of(op(static_cast<Trit>(i), static_cast<Trit>(j)));
    }
  }
  return r;
}

/// The fixpoint engine state shared by the worklist loop and the per-node
/// transfer functions.
struct Engine {
  const Netlist& netlist;
  const DataflowOptions& options;
  PortMap ports;
  std::vector<TritSet> sets;
  std::vector<bool> table_fell_back;
  DataflowStats stats;

  Engine(const Netlist& n, const DataflowOptions& opts)
      : netlist(n), options(opts), ports(n),
        sets(ports.size(), kTritSetEmpty),
        table_fell_back(n.num_slots(), false) {
    stats.num_ports = ports.size();
  }

  /// The set observed at an input pin: its driver's port set, or ⊤ when the
  /// pin is unconnected or points outside the netlist (broken structure is
  /// tolerated by reading it as "anything").
  TritSet pin_set(PinRef pin) const {
    const Node& node = netlist.node(pin.node);
    if (pin.pin >= node.fanin.size()) return kTritSetTop;
    const PortRef drv = node.fanin[pin.pin];
    if (!drv.valid() || drv.node.value >= netlist.num_slots() ||
        netlist.is_dead(drv.node) ||
        drv.port >= netlist.num_ports(drv.node)) {
      return kTritSetTop;
    }
    return sets[ports.index(drv)];
  }

  /// Writes the freshly computed set of one output port. Transfer functions
  /// are monotone and inputs only grow, so plain assignment equals union
  /// with the old value; returns whether the port grew.
  bool store(PortRef port, TritSet value) {
    TritSet& slot = sets[ports.index(port)];
    if (slot == value) return false;
    slot = value;
    ++stats.updates;
    return true;
  }

  /// Variadic gate family: the exact lift of the ClsSimulator fold
  /// (and3 from 1 / or3 from 0 / xor3 from 0, optionally negated).
  TritSet fold_gate(NodeId id, Trit (*op)(Trit, Trit), Trit init,
                    bool invert) {
    TritSet acc = trit_set_of(init);
    const unsigned pins = netlist.num_pins(id);
    for (unsigned pin = 0; pin < pins; ++pin) {
      acc = lift2(op, acc, pin_set(PinRef(id, pin)));
      if (acc == kTritSetEmpty) break;  // some driver still ⊥
    }
    return invert ? lift1(not3, acc) : acc;
  }

  /// Exact lift of mux3 over the (select, a, b) triple: at most 27 concrete
  /// evaluations.
  TritSet mux_set(NodeId id) {
    const TritSet s = pin_set(PinRef(id, 0));
    const TritSet a = pin_set(PinRef(id, 1));
    const TritSet b = pin_set(PinRef(id, 2));
    TritSet r = kTritSetEmpty;
    for (unsigned i = 0; i < 3; ++i) {
      if (!(s & (1u << i))) continue;
      for (unsigned j = 0; j < 3; ++j) {
        if (!(a & (1u << j))) continue;
        for (unsigned k = 0; k < 3; ++k) {
          if (!(b & (1u << k))) continue;
          r |= trit_set_of(mux3(static_cast<Trit>(i), static_cast<Trit>(j),
                                static_cast<Trit>(k)));
        }
      }
    }
    return r;
  }

  /// Table cells: enumerate the product of the pin sets and lift
  /// TruthTable::eval_ternary exactly, unless the product exceeds the cap —
  /// then widen every output to ⊤ (sound, never exact) and record the
  /// fallback. Returns true when any output port grew.
  bool table_transfer(NodeId id) {
    const Node& node = netlist.node(id);
    const unsigned pins = node.num_pins();
    const unsigned outs = node.num_ports();

    std::vector<TritSet> in_sets(pins);
    std::size_t product = 1;
    bool any_empty = false;
    for (unsigned pin = 0; pin < pins; ++pin) {
      in_sets[pin] = pin_set(PinRef(id, pin));
      const std::size_t card =
          static_cast<std::size_t>(__builtin_popcount(in_sets[pin]));
      if (card == 0) any_empty = true;
      product *= std::max<std::size_t>(card, 1);
      if (product > options.table_product_cap) break;
    }

    if (product > options.table_product_cap) {
      if (!table_fell_back[id.value]) {
        table_fell_back[id.value] = true;
        ++stats.table_fallbacks;
      }
      bool changed = false;
      for (unsigned port = 0; port < outs; ++port) {
        changed |= store(PortRef(id, port), kTritSetTop);
      }
      return changed;
    }
    if (any_empty) return false;  // some driver still ⊥ — nothing to emit

    const TruthTable& tt = netlist.table(node.table);
    std::vector<TritSet> out_sets(outs, kTritSetEmpty);
    std::vector<unsigned> choice(pins, 0);     // index into the pin's set
    std::vector<std::vector<Trit>> members(pins);
    for (unsigned pin = 0; pin < pins; ++pin) {
      for (unsigned i = 0; i < 3; ++i) {
        if (in_sets[pin] & (1u << i)) {
          members[pin].push_back(static_cast<Trit>(i));
        }
      }
    }
    std::vector<Trit> inputs(pins);
    while (true) {
      for (unsigned pin = 0; pin < pins; ++pin) {
        inputs[pin] = members[pin][choice[pin]];
      }
      const std::vector<Trit> result = tt.eval_ternary(inputs);
      for (unsigned port = 0; port < outs && port < result.size(); ++port) {
        out_sets[port] |= trit_set_of(result[port]);
      }
      // Odometer over the product of the member lists.
      unsigned pin = 0;
      while (pin < pins && ++choice[pin] == members[pin].size()) {
        choice[pin] = 0;
        ++pin;
      }
      if (pin == pins) break;
    }

    bool changed = false;
    for (unsigned port = 0; port < outs; ++port) {
      changed |= store(PortRef(id, port), out_sets[port]);
    }
    return changed;
  }

  /// Recomputes every output port of `id` from its current pin sets.
  /// Returns true when any port grew (sinks must then be revisited).
  bool transfer(NodeId id) {
    switch (netlist.kind(id)) {
      case CellKind::kInput:
        return store(PortRef(id, 0), kTritSetTop);
      case CellKind::kConst0:
        return store(PortRef(id, 0), trit_set_of(Trit::kZero));
      case CellKind::kConst1:
        return store(PortRef(id, 0), trit_set_of(Trit::kOne));
      case CellKind::kOutput:
        return false;  // no output ports; read via output_set()
      case CellKind::kLatch:
        // Cycle 0 contributes X (the all-X power-up state); every later
        // cycle contributes the data driver's value from the cycle before.
        return store(PortRef(id, 0),
                     static_cast<TritSet>(kSetX | pin_set(PinRef(id, 0))));
      case CellKind::kBuf:
        return store(PortRef(id, 0), pin_set(PinRef(id, 0)));
      case CellKind::kNot:
        return store(PortRef(id, 0), lift1(not3, pin_set(PinRef(id, 0))));
      case CellKind::kAnd:
        return store(PortRef(id, 0), fold_gate(id, and3, Trit::kOne, false));
      case CellKind::kNand:
        return store(PortRef(id, 0), fold_gate(id, and3, Trit::kOne, true));
      case CellKind::kOr:
        return store(PortRef(id, 0), fold_gate(id, or3, Trit::kZero, false));
      case CellKind::kNor:
        return store(PortRef(id, 0), fold_gate(id, or3, Trit::kZero, true));
      case CellKind::kXor:
        return store(PortRef(id, 0), fold_gate(id, xor3, Trit::kZero, false));
      case CellKind::kXnor:
        return store(PortRef(id, 0), fold_gate(id, xor3, Trit::kZero, true));
      case CellKind::kMux:
        return store(PortRef(id, 0), mux_set(id));
      case CellKind::kJunc: {
        const TritSet in = pin_set(PinRef(id, 0));
        bool changed = false;
        for (unsigned port = 0; port < netlist.num_ports(id); ++port) {
          changed |= store(PortRef(id, port), in);
        }
        return changed;
      }
      case CellKind::kTable:
        return table_transfer(id);
    }
    return false;
  }
};

}  // namespace

std::optional<Trit> trit_set_singleton(TritSet s) {
  if (!trit_set_is_singleton(s)) return std::nullopt;
  for (unsigned i = 0; i < 3; ++i) {
    if (s & (1u << i)) return static_cast<Trit>(i);
  }
  return std::nullopt;
}

std::string to_string_trit_set(TritSet s) {
  std::string out = "{";
  for (const Trit t : {Trit::kZero, Trit::kOne, Trit::kX}) {
    if (!trit_set_contains(s, t)) continue;
    if (out.size() > 1) out += ',';
    out += to_char(t);
  }
  out += '}';
  return out;
}

TritSet DataflowResult::pin_set(PinRef pin) const {
  const Node& node = netlist_->node(pin.node);
  if (pin.pin >= node.fanin.size()) return kTritSetTop;
  const PortRef drv = node.fanin[pin.pin];
  if (!drv.valid() || drv.node.value >= netlist_->num_slots() ||
      netlist_->is_dead(drv.node) ||
      drv.port >= netlist_->num_ports(drv.node)) {
    return kTritSetTop;
  }
  return set_for(drv);
}

TritSet DataflowResult::output_set(NodeId po) const {
  if (netlist_->num_pins(po) == 0) return kTritSetTop;
  return pin_set(PinRef(po, 0));
}

std::optional<bool> DataflowResult::constant_value(PortRef port) const {
  const std::optional<Trit> only = trit_set_singleton(set_for(port));
  if (!only || !is_definite(*only)) return std::nullopt;
  return to_bool(*only);
}

DataflowResult run_dataflow(const Netlist& netlist,
                            const DataflowOptions& options) {
  Engine engine(netlist, options);

  // FIFO worklist seeded with every live node in id order; the in-queue
  // flag keeps each node enqueued at most once at a time. Every transfer
  // function is monotone over a lattice of height 3 per port, so the loop
  // terminates after O(ports) growth events.
  std::deque<NodeId> worklist;
  std::vector<bool> queued(netlist.num_slots(), false);
  for (const NodeId id : netlist.live_nodes()) {
    worklist.push_back(id);
    queued[id.value] = true;
  }

  while (!worklist.empty()) {
    const NodeId id = worklist.front();
    worklist.pop_front();
    queued[id.value] = false;
    ++engine.stats.iterations;
    if (!engine.transfer(id)) continue;
    for (const auto& port_sinks : netlist.node(id).fanout) {
      for (const PinRef& sink : port_sinks) {
        if (!sink.node.valid() || sink.node.value >= netlist.num_slots() ||
            netlist.is_dead(sink.node) || queued[sink.node.value]) {
          continue;
        }
        worklist.push_back(sink.node);
        queued[sink.node.value] = true;
      }
    }
  }

  return DataflowResult(netlist, std::move(engine.ports),
                        std::move(engine.sets), engine.stats);
}

std::optional<std::string> static_cls_equivalence_proof(
    const Netlist& a, const Netlist& b, const DataflowOptions& options) {
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size(),
              "static_cls_equivalence_proof: primary output counts differ");
  const DataflowResult ra = run_dataflow(a, options);
  const DataflowResult rb = run_dataflow(b, options);
  for (std::size_t i = 0; i < a.primary_outputs().size(); ++i) {
    const TritSet sa = ra.output_set(a.primary_outputs()[i]);
    const TritSet sb = rb.output_set(b.primary_outputs()[i]);
    if (!trit_set_is_singleton(sa) || sa != sb) return std::nullopt;
  }
  return "all " + std::to_string(a.primary_outputs().size()) +
         " paired primary outputs carry equal singleton ternary fixpoint "
         "sets, so both designs produce identical CLS traces";
}

std::vector<MoveCertificate> certify_plan_moves(
    const Netlist& netlist, const std::vector<RetimingMove>& moves,
    const DataflowOptions& options) {
  std::vector<MoveCertificate> certificates(moves.size());
  Netlist scratch = netlist;
  bool replay_broken = false;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    MoveCertificate& cert = certificates[i];
    if (replay_broken) {
      cert.reason = "unreachable: an earlier move of the plan did not apply";
      continue;
    }
    const RetimingMove& move = moves[i];
    if (!can_apply(scratch, move)) {
      cert.reason = "move is not applicable at this position of the plan";
      replay_broken = true;
      continue;
    }

    // Static argument 1 — Theorem 5.1: an element whose function maps all-X
    // inputs to all-X outputs cannot manufacture definite latch state, so
    // any move across it leaves every CLS trace unchanged.
    if (scratch.cell_function(move.element).preserves_all_x()) {
      cert.certified = true;
      cert.reason = "element preserves all-X (Theorem 5.1)";
    } else if (!observable_mask(scratch)[move.element.value]) {
      // Static argument 2: the element cannot influence any primary output,
      // so relocating latches around it cannot change any observed trace.
      cert.certified = true;
      cert.reason = "element is unobservable from every primary output";
    } else {
      // Static argument 3: whole-design fixpoint proof across the move.
      Netlist after = scratch;
      apply_move(after, move);
      if (const std::optional<std::string> proof =
              static_cls_equivalence_proof(scratch, after, options)) {
        cert.certified = true;
        cert.reason = *proof;
      } else {
        cert.reason =
            "no static argument applies; an engine backend must decide";
      }
    }
    apply_move(scratch, move);
  }
  return certificates;
}

}  // namespace rtv
