#pragma once
// The lint driver: runs every registered pass over a netlist (and
// optionally a retiming plan) and renders the result as text or JSON.
// This is the engine behind `rtv lint` and the flow's input precondition.

#include <optional>
#include <vector>

#include "analysis/pass.hpp"

namespace rtv {

/// Result of a lint run. `plan` is populated only when a plan was given;
/// `dataflow_stats` only when the semantic stage actually ran the ternary
/// fixpoint (LintOptions::semantic on and no structural errors).
struct LintResult {
  DiagnosticReport diagnostics;
  std::optional<PlanAnalysis> plan;
  std::optional<DataflowStats> dataflow_stats;

  bool clean() const { return diagnostics.empty(); }
  bool has_errors() const { return diagnostics.has_errors(); }
};

/// Structure-only lint: runs every pass that does not need a plan.
LintResult run_lint(const Netlist& netlist, const LintOptions& options = {});

/// Full lint: structural passes plus the Section-4 plan analysis. The
/// netlist is never mutated.
LintResult run_lint(const Netlist& netlist,
                    const std::vector<RetimingMove>& plan,
                    const LintOptions& options = {});

/// Human-readable report (diagnostic lines, plan verdict, summary).
std::string render_text(const LintResult& result);

/// Machine-readable report:
///   { "rtv_lint_version": 1,
///     "summary": {"errors": E, "warnings": W, "notes": N, "clean": bool},
///     "diagnostics": [...],
///     "plan": {"analyzable", "feasible", "moves", "forward_moves",
///              "backward_moves", "forward_across_non_justifiable", "k",
///              "safe_replacement", "certificate"} }   // when a plan ran
std::string render_json(const LintResult& result);

}  // namespace rtv
