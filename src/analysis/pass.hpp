#pragma once
// The lint pass framework: a registry of named passes that read a netlist
// (and optionally a retiming plan) and accumulate Diagnostics.
//
// Three pass families ship with the library. The *structural* family lifts
// Netlist::structural_violations into coded diagnostics and adds the
// move-engine lint checks (dangling ports, junction normality, unreachable
// cells). The *plan* family runs over a PlanAnalysis (see plan.hpp) and
// emits the paper's Section-4 findings: RTV201 for every move that breaks
// safe replacement, feasibility errors, and the Theorem 4.5 certificate.
// The *semantic* family (RTV3xx, semantic_passes.cpp) reads the ternary
// dataflow fixpoint: stuck-at-X latches, static constants, dead cones,
// combinational SCCs, and static safety certificates for plan moves. The
// driver in lint.hpp runs every registered pass in two stages — passes
// whose `needs_dataflow` is set run only after the fixpoint has been
// computed, which the driver skips when structural errors were found (the
// fixpoint's claims are only meaningful on a sound netlist).

#include <functional>
#include <optional>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/plan.hpp"
#include "netlist/netlist.hpp"

namespace rtv {

struct LintOptions {
  /// Escalate implicit multi-fanout ports (RTV109) from warning to error —
  /// the retiming move engine requires junction-normal designs.
  bool require_junction_normal = false;
  /// Emit RTV110 warnings for cells that cannot influence any output.
  bool warn_unreachable = true;
  /// Run the semantic (RTV3xx) pass family: the ternary dataflow fixpoint
  /// plus the structural SCC/dead-cone reports. `rtv lint --no-semantic`
  /// turns it off for structural-only runs.
  bool semantic = true;
  /// Error (RTV204) when the plan's Thm 4.5 k exceeds this bound.
  std::optional<std::size_t> max_k;
};

/// Everything a pass may look at. `plan`/`plan_analysis` are null for
/// structure-only runs; the driver computes the analysis once and shares it
/// with every plan pass. `dataflow` is null until the driver's second stage
/// (and stays null when semantic analysis is off or structural errors made
/// the fixpoint meaningless).
struct LintContext {
  const Netlist& netlist;
  const LintOptions& options;
  const std::vector<RetimingMove>* plan = nullptr;
  const PlanAnalysis* plan_analysis = nullptr;
  const DataflowResult* dataflow = nullptr;
};

struct LintPass {
  const char* name;
  const char* description;
  bool needs_plan;  ///< skipped when the context carries no plan
  std::function<void(const LintContext&, DiagnosticReport&)> run;
  /// Deferred to the driver's second stage, after the ternary fixpoint is
  /// available; skipped entirely when it never becomes available.
  bool needs_dataflow = false;
};

/// The built-in pass registry, in execution order.
const std::vector<LintPass>& lint_passes();

/// Registration hooks (one per pass family, called once by lint_passes()).
void register_structural_passes(std::vector<LintPass>& passes);
void register_plan_passes(std::vector<LintPass>& passes);
void register_semantic_passes(std::vector<LintPass>& passes);

}  // namespace rtv
