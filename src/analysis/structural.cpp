// The structural lint family: Netlist::structural_violations lifted into
// coded diagnostics, plus the move-engine preconditions check_valid never
// enforced — dangling ports, junction normality as a lintable property,
// and unreachable logic.

#include "analysis/pass.hpp"

namespace rtv {

namespace {

DiagCode code_for(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnconnectedPin: return DiagCode::kUnconnectedPin;
    case ViolationKind::kMultiDrivenPin: return DiagCode::kMultiDrivenPin;
    case ViolationKind::kBadArity: return DiagCode::kBadArity;
    case ViolationKind::kBadTable: return DiagCode::kBadTable;
    case ViolationKind::kBrokenCrossLink: return DiagCode::kBrokenCrossLink;
    case ViolationKind::kIndexOutOfSync: return DiagCode::kIndexOutOfSync;
    case ViolationKind::kCombinationalCycle:
      return DiagCode::kCombinationalCycle;
    case ViolationKind::kImplicitFanout: return DiagCode::kImplicitFanout;
  }
  return DiagCode::kBrokenCrossLink;
}

/// RTV101..RTV107: every accumulated structural violation, coded.
void connectivity_pass(const LintContext& ctx, DiagnosticReport& report) {
  for (const StructuralViolation& v :
       ctx.netlist.structural_violations(/*require_junction_normal=*/false)) {
    report.add(code_for(v.kind), ctx.netlist, v.node, v.message);
  }
}

/// RTV109: implicit multi-fanout ports. A warning by default; an error when
/// the caller requires junction-normal form (the move engine does).
void junction_normal_pass(const LintContext& ctx, DiagnosticReport& report) {
  const Netlist& n = ctx.netlist;
  for (const NodeId id : n.live_nodes()) {
    for (std::uint32_t port = 0; port < n.num_ports(id); ++port) {
      const std::size_t sinks = n.sinks(PortRef(id, port)).size();
      if (sinks <= 1) continue;
      Diagnostic d;
      d.code = DiagCode::kImplicitFanout;
      d.severity = ctx.options.require_junction_normal ? Severity::kError
                                                       : Severity::kWarning;
      d.node = id;
      d.node_name = n.name(id);
      d.message = "port " + std::to_string(port) + " drives " +
                  std::to_string(sinks) +
                  " pins; junctionize() before retiming moves";
      report.add(std::move(d));
    }
  }
}

/// RTV108: output ports that drive nothing. The retiming move engine (and
/// the plan replay) require every combinational port and latch to feed a
/// pin; primary inputs are exempt — an unused input is interface contract,
/// not a defect.
void dangling_port_pass(const LintContext& ctx, DiagnosticReport& report) {
  const Netlist& n = ctx.netlist;
  for (const NodeId id : n.live_nodes()) {
    if (n.kind(id) == CellKind::kInput) continue;
    for (std::uint32_t port = 0; port < n.num_ports(id); ++port) {
      if (!n.sinks(PortRef(id, port)).empty()) continue;
      report.add(DiagCode::kDanglingPort, n, id,
                 "output port " + std::to_string(port) +
                     " drives nothing (trim_dangling() restores the "
                     "every-port-driven invariant)");
    }
  }
}

/// RTV110: cells that cannot influence any primary output (the backward
/// closure sweep_unobservable would delete). Primary inputs are exempt.
void unreachable_pass(const LintContext& ctx, DiagnosticReport& report) {
  if (!ctx.options.warn_unreachable) return;
  const Netlist& n = ctx.netlist;
  const std::vector<bool> observable = observable_mask(n);
  for (const NodeId id : n.live_nodes()) {
    if (observable[id.value] || n.kind(id) == CellKind::kInput) continue;
    report.add(DiagCode::kUnreachableCell, n, id,
               std::string(cell_kind_name(n.kind(id))) +
                   " cannot influence any primary output "
                   "(sweep_unobservable() would remove it)");
  }
}

}  // namespace

void register_structural_passes(std::vector<LintPass>& passes) {
  passes.push_back({"connectivity",
                    "pins connected, cross-links sound, cycles latched",
                    /*needs_plan=*/false, connectivity_pass});
  passes.push_back({"junction-normal",
                    "every port drives at most one pin (Section 3.2 form)",
                    /*needs_plan=*/false, junction_normal_pass});
  passes.push_back({"dangling-ports",
                    "every non-input port drives a pin (move engine "
                    "precondition)",
                    /*needs_plan=*/false, dangling_port_pass});
  passes.push_back({"unreachable",
                    "every cell can influence a primary output",
                    /*needs_plan=*/false, unreachable_pass});
}

}  // namespace rtv
