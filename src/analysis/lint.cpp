#include "analysis/lint.hpp"

#include <sstream>

#include "io/json.hpp"

namespace rtv {

namespace {

LintResult run_passes(const Netlist& netlist,
                      const std::vector<RetimingMove>* plan,
                      const LintOptions& options) {
  LintResult result;
  LintContext ctx{netlist, options};
  if (plan != nullptr) {
    result.plan = analyze_plan(netlist, *plan);
    ctx.plan = plan;
    ctx.plan_analysis = &*result.plan;
  }

  // Stage 1: every pass that works on structure alone. Their verdict
  // decides whether the fixpoint is worth computing — its claims are only
  // meaningful on a structurally sound netlist.
  for (const LintPass& pass : lint_passes()) {
    if (pass.needs_dataflow) continue;
    if (pass.needs_plan && ctx.plan == nullptr) continue;
    pass.run(ctx, result.diagnostics);
  }

  // Stage 2: the ternary dataflow fixpoint and the passes that read it.
  std::optional<DataflowResult> dataflow;
  if (options.semantic && !result.diagnostics.has_errors()) {
    dataflow.emplace(run_dataflow(netlist));
    ctx.dataflow = &*dataflow;
    result.dataflow_stats = dataflow->stats();
    for (const LintPass& pass : lint_passes()) {
      if (!pass.needs_dataflow) continue;
      if (pass.needs_plan && ctx.plan == nullptr) continue;
      pass.run(ctx, result.diagnostics);
    }
  }

  result.diagnostics.sort_canonical();
  return result;
}

}  // namespace

LintResult run_lint(const Netlist& netlist, const LintOptions& options) {
  return run_passes(netlist, nullptr, options);
}

LintResult run_lint(const Netlist& netlist,
                    const std::vector<RetimingMove>& plan,
                    const LintOptions& options) {
  return run_passes(netlist, &plan, options);
}

std::string render_text(const LintResult& result) {
  std::ostringstream os;
  os << render_text(result.diagnostics);
  if (result.dataflow_stats) {
    const DataflowStats& s = *result.dataflow_stats;
    os << "dataflow: " << s.num_ports << " port(s), " << s.iterations
       << " iteration(s), " << s.updates << " update(s), "
       << s.table_fallbacks << " table fallback(s)\n";
  }
  if (result.plan) {
    const PlanAnalysis& p = *result.plan;
    os << "plan: " << p.stats.total_moves << " move(s), "
       << p.stats.forward_moves << " forward / " << p.stats.backward_moves
       << " backward, " << p.stats.forward_across_non_justifiable
       << " forward across non-justifiable";
    if (!p.analyzable) {
      os << "; NOT ANALYZABLE: " << p.precondition_error << "\n";
    } else {
      os << "; " << (p.feasible ? "feasible" : "NOT feasible")
         << ", k = " << p.k() << "\n";
      if (p.feasible) os << "certificate: " << p.certificate() << "\n";
    }
  }
  return os.str();
}

std::string render_json(const LintResult& result) {
  std::ostringstream os;
  os << "{\n  \"rtv_lint_version\": 1,\n  \"summary\": {\"errors\": "
     << result.diagnostics.num_errors()
     << ", \"warnings\": " << result.diagnostics.num_warnings()
     << ", \"notes\": " << result.diagnostics.num_notes() << ", \"clean\": "
     << (result.clean() ? "true" : "false") << "},\n  \"diagnostics\": [";
  const auto& diags = result.diagnostics.diagnostics();
  for (std::size_t i = 0; i < diags.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << diagnostic_to_json(diags[i]);
  }
  os << (diags.empty() ? "]" : "\n  ]");
  if (result.dataflow_stats) {
    const DataflowStats& s = *result.dataflow_stats;
    os << ",\n  \"dataflow\": {\"ports\": " << s.num_ports
       << ", \"iterations\": " << s.iterations << ", \"updates\": "
       << s.updates << ", \"table_fallbacks\": " << s.table_fallbacks << "}";
  }
  if (result.plan) {
    const PlanAnalysis& p = *result.plan;
    os << ",\n  \"plan\": {\n    \"analyzable\": "
       << (p.analyzable ? "true" : "false");
    if (!p.analyzable) {
      os << ",\n    \"precondition_error\": \""
         << json_escape(p.precondition_error) << "\"";
    }
    os << ",\n    \"feasible\": " << (p.feasible ? "true" : "false")
       << ",\n    \"moves\": " << p.stats.total_moves
       << ",\n    \"forward_moves\": " << p.stats.forward_moves
       << ",\n    \"backward_moves\": " << p.stats.backward_moves
       << ",\n    \"forward_across_non_justifiable\": "
       << p.stats.forward_across_non_justifiable << ",\n    \"k\": " << p.k()
       << ",\n    \"safe_replacement\": "
       << (p.stats.preserves_safe_replacement() ? "true" : "false")
       << ",\n    \"certificate\": \"" << json_escape(p.certificate())
       << "\"\n  }";
  }
  os << "\n}\n";
  return os.str();
}

}  // namespace rtv
