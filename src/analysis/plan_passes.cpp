// The plan lint family: Section-4 findings over a PlanAnalysis. The driver
// computes the analysis once (plan.hpp) and shares it through LintContext;
// these passes only translate it into coded diagnostics.

#include "analysis/pass.hpp"

namespace rtv {

namespace {

/// RTV206/RTV203/RTV202: the plan must be replayable — netlist analyzable,
/// every element a live combinational cell, every move enabled at its plan
/// position.
void plan_feasibility_pass(const LintContext& ctx, DiagnosticReport& report) {
  const PlanAnalysis& analysis = *ctx.plan_analysis;
  if (!analysis.analyzable) {
    report.add(DiagCode::kPlanNotAnalyzable, ctx.netlist, NodeId(),
               analysis.precondition_error);
  }
  std::size_t index = 0;
  for (const PlanMoveCheck& check : analysis.moves) {
    if (!check.element_ok) {
      report.add(DiagCode::kBadPlanElement, ctx.netlist, check.move.element,
                 check.detail, index);
    } else if (analysis.analyzable && !check.enabled) {
      report.add(DiagCode::kMoveNotEnabled, ctx.netlist, check.move.element,
                 std::string(to_string(check.move.direction)) +
                     " move is not enabled: " + check.detail,
                 index);
    }
    ++index;
  }
}

/// RTV201/RTV205/RTV204: the paper's safety verdict. Every forward move
/// across a non-justifiable element breaks safe replacement (Prop 4.2) and
/// gets its own warning; a feasible plan with k > 0 gets the Theorem 4.5
/// certificate as a note; RTV204 errors when k exceeds the user's bound.
void plan_safety_pass(const LintContext& ctx, DiagnosticReport& report) {
  const PlanAnalysis& analysis = *ctx.plan_analysis;
  std::size_t index = 0;
  for (const PlanMoveCheck& check : analysis.moves) {
    if (check.element_ok && !check.cls.preserves_safe_replacement()) {
      report.add(DiagCode::kUnsafeForwardMove, ctx.netlist, check.move.element,
                 "forward move across non-justifiable element breaks safe "
                 "replacement (Prop 4.2)",
                 index);
    }
    ++index;
  }
  if (analysis.feasible && analysis.k() > 0) {
    report.add(DiagCode::kSettleCertificate, ctx.netlist, NodeId(),
               "retimed design needs a " + std::to_string(analysis.k()) +
                   "-cycle settling prefix: " + analysis.certificate());
  }
  if (ctx.options.max_k.has_value() && analysis.k() > *ctx.options.max_k) {
    report.add(DiagCode::kDelayBoundExceeded, ctx.netlist, NodeId(),
               "plan needs k = " + std::to_string(analysis.k()) +
                   " settling cycles, exceeding the allowed bound of " +
                   std::to_string(*ctx.options.max_k));
  }
}

}  // namespace

void register_plan_passes(std::vector<LintPass>& passes) {
  passes.push_back({"plan-feasibility",
                    "plan elements resolve and every move is enabled",
                    /*needs_plan=*/true, plan_feasibility_pass});
  passes.push_back({"plan-safety",
                    "Section-4 safety census and Theorem 4.5 certificate",
                    /*needs_plan=*/true, plan_safety_pass});
}

}  // namespace rtv
