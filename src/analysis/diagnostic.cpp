#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <sstream>

#include "io/json.hpp"

namespace rtv {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string to_string(DiagCode code) {
  return "RTV" + std::to_string(static_cast<std::uint16_t>(code));
}

const char* diag_code_title(DiagCode code) {
  switch (code) {
    case DiagCode::kUnconnectedPin: return "unconnected input pin";
    case DiagCode::kMultiDrivenPin: return "multi-driven pin";
    case DiagCode::kBadArity: return "illegal cell arity";
    case DiagCode::kBadTable: return "broken table cell";
    case DiagCode::kBrokenCrossLink: return "broken fanin/fanout cross-link";
    case DiagCode::kIndexOutOfSync: return "interface index out of sync";
    case DiagCode::kCombinationalCycle: return "combinational cycle";
    case DiagCode::kDanglingPort: return "dangling output port";
    case DiagCode::kImplicitFanout: return "implicit multi-fanout port";
    case DiagCode::kUnreachableCell: return "unreachable cell";
    case DiagCode::kUnsafeForwardMove:
      return "forward move across non-justifiable element";
    case DiagCode::kMoveNotEnabled: return "move not enabled";
    case DiagCode::kBadPlanElement: return "invalid plan element";
    case DiagCode::kDelayBoundExceeded: return "delay bound exceeded";
    case DiagCode::kSettleCertificate: return "settle-cycle certificate";
    case DiagCode::kPlanNotAnalyzable: return "plan not analyzable";
    case DiagCode::kLatchNeverInitializes: return "latch never initializes";
    case DiagCode::kStaticConstant: return "static constant signal";
    case DiagCode::kDeadLogicCone: return "dead logic cone";
    case DiagCode::kCombinationalScc: return "combinational feedback group";
    case DiagCode::kStaticallySafeMove:
      return "move statically certified safe";
  }
  return "unknown diagnostic";
}

Severity diag_default_severity(DiagCode code) {
  switch (code) {
    case DiagCode::kDanglingPort:
    case DiagCode::kImplicitFanout:
    case DiagCode::kUnreachableCell:
    case DiagCode::kUnsafeForwardMove:
    case DiagCode::kLatchNeverInitializes:
      return Severity::kWarning;
    case DiagCode::kSettleCertificate:
    case DiagCode::kStaticConstant:
    case DiagCode::kDeadLogicCone:
    case DiagCode::kCombinationalScc:
    case DiagCode::kStaticallySafeMove:
      return Severity::kNote;
    default:
      return Severity::kError;
  }
}

void DiagnosticReport::add(Diagnostic diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError: ++num_errors_; break;
    case Severity::kWarning: ++num_warnings_; break;
    case Severity::kNote: ++num_notes_; break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticReport::add(DiagCode code, const Netlist& netlist, NodeId node,
                           std::string message,
                           std::optional<std::size_t> move_index) {
  Diagnostic d;
  d.code = code;
  d.severity = diag_default_severity(code);
  d.node = node;
  if (node.valid() && node.value < netlist.num_slots() &&
      !netlist.is_dead(node)) {
    d.node_name = netlist.name(node);
  }
  d.move_index = move_index;
  d.message = std::move(message);
  add(std::move(d));
}

void DiagnosticReport::merge(const DiagnosticReport& other) {
  for (const Diagnostic& d : other.diagnostics_) add(d);
}

void DiagnosticReport::sort_canonical() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.code != b.code) return a.code < b.code;
                     if (a.node != b.node) return a.node < b.node;
                     return a.move_index < b.move_index;
                   });
}

std::string render_text(const DiagnosticReport& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics()) {
    os << to_string(d.severity) << "[" << to_string(d.code) << "]";
    if (d.move_index) os << " move " << *d.move_index << ",";
    if (d.node.valid()) os << " node '" << d.node_name << "':";
    os << " " << d.message << "\n";
  }
  os << report.num_errors() << " error(s), " << report.num_warnings()
     << " warning(s), " << report.num_notes() << " note(s)\n";
  return os.str();
}

std::string diagnostic_to_json(const Diagnostic& diagnostic) {
  std::ostringstream os;
  os << "{\"code\": \"" << to_string(diagnostic.code) << "\", \"severity\": \""
     << to_string(diagnostic.severity) << "\"";
  if (diagnostic.node.valid()) {
    os << ", \"node\": " << diagnostic.node.value << ", \"name\": \""
       << json_escape(diagnostic.node_name) << "\"";
  }
  if (diagnostic.move_index) os << ", \"move\": " << *diagnostic.move_index;
  os << ", \"message\": \"" << json_escape(diagnostic.message) << "\"}";
  return os.str();
}

}  // namespace rtv
