#include "analysis/pass.hpp"

namespace rtv {

const std::vector<LintPass>& lint_passes() {
  static const std::vector<LintPass> passes = [] {
    std::vector<LintPass> p;
    register_structural_passes(p);
    register_plan_passes(p);
    register_semantic_passes(p);
    return p;
  }();
  return passes;
}

}  // namespace rtv
