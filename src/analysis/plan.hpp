#pragma once
// Static analysis of a retiming-move plan (paper Section 4), without
// touching the design.
//
// A plan is an ordered list of atomic RetimingMoves. Instead of applying
// the moves with apply_move, the analyzer replays their latch-count deltas
// on the Leiserson–Saxe retiming graph: in junction-normal form every wire
// chain is a pure latch run, so "a latch sits directly on this pin/port" is
// exactly "the corresponding graph edge has weight >= 1", and a move is a
// unit weight transfer between a vertex's in- and out-edges. That makes
// static enabledness equivalent to can_apply at every position, while the
// input netlist stays byte-identical.
//
// Classification is position-independent (justifiability never changes as
// latches move), so the analyzer derives the full Section-4 census and the
// Theorem 4.5 certificate k = max forward moves across any single
// non-justifiable element: C^k ⊑ D, and test sets survive with a k-cycle
// prefix (Thm 4.6).

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "retime/moves.hpp"

namespace rtv {

/// Per-move result of the static replay.
struct PlanMoveCheck {
  RetimingMove move;
  MoveClass cls;            ///< meaningful only when element_ok
  bool element_ok = false;  ///< element is a live combinational node
  bool enabled = false;     ///< statically enabled at its plan position
  std::string detail;       ///< why not, when !element_ok or !enabled
};

/// Result of analyze_plan. `stats` counts every well-formed move (enabled
/// or not); for a feasible plan it equals the stats apply_move would have
/// produced, and k() is the Theorem 4.5 certificate.
struct PlanAnalysis {
  /// Preconditions held: structurally sound + junction-normal netlist.
  bool analyzable = false;
  std::string precondition_error;  ///< set when !analyzable

  std::vector<PlanMoveCheck> moves;
  MoveSequenceStats stats;

  /// Every move well-formed and statically enabled in plan order.
  bool feasible = false;

  /// The Theorem 4.5 bound: C^k ⊑ D after this plan.
  std::size_t k() const { return stats.max_forward_per_non_justifiable; }

  /// "safe replacement (C ⊑ D, Cor 4.4)" or "C^k ⊑ D (Thm 4.5)".
  std::string certificate() const;
};

/// Statically analyzes `moves` against `netlist` (never mutated).
PlanAnalysis analyze_plan(const Netlist& netlist,
                          const std::vector<RetimingMove>& moves);

// ---- JSON plan files -------------------------------------------------------
//
//   { "moves": [ {"element": "J1", "direction": "forward"},
//                {"node": 12,     "direction": "backward"} ] }
//
// A move names its element by netlist node name ("element") or by NodeId
// ("node"); when both are present the name wins.

struct RetimingPlan {
  std::vector<RetimingMove> moves;
};

/// Parses a JSON plan, resolving elements against `netlist`. Throws
/// ParseError on malformed JSON or unresolvable elements.
RetimingPlan plan_from_json(const std::string& text, const Netlist& netlist);

/// Reads a plan file. Throws Error if the file cannot be opened.
RetimingPlan load_plan(const std::string& path, const Netlist& netlist);

/// Serializes moves as the JSON plan format (names + node ids).
std::string plan_to_json(const Netlist& netlist,
                         const std::vector<RetimingMove>& moves);

}  // namespace rtv
