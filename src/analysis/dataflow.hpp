#pragma once
// Ternary dataflow: a worklist fixpoint over the value-set lattice of the
// paper's conservative three-valued simulation (CLS, Section 5).
//
// Abstract domain: every output port carries a *value set* S ⊆ {0, 1, X}
// ordered by inclusion (⊥ = ∅ below the singletons, {0,1,X} = ⊤). The
// engine propagates these sets through the netlist across an unbounded
// number of clock cycles — latches are seeded with {X} (the all-X power-up
// state of Section 5) and additionally absorb their data driver's set (the
// cross-cycle edge), every combinational cell gets the set-lifted version
// of its exact per-cell ternary extension (the same and3/or3/mux3/
// eval_ternary functions ClsSimulator uses), and fanout junctions copy.
//
// Soundness (checked against exhaustive ternary reachability and
// SymbolicMachine in tests/test_dataflow.cpp): every transfer function is
// the set-lift of the concrete CLS step, so by induction over cycles the
// fixpoint set of a port contains the port's concrete CLS value at *every*
// cycle of *every* ternary input sequence from all-X. Consequences:
//   * a latch whose set is exactly {X} never leaves X — no input sequence
//     can initialize it (RTV301);
//   * a port with a definite singleton set {0} or {1} is that constant on
//     every cycle of every run (RTV302);
//   * two designs whose paired primary outputs all have equal singleton
//     sets are CLS-equivalent outright — the static proof fast path of
//     verify_cls_equivalence (decided_by = "static").
//
// Monotone transfer functions over a finite lattice: the worklist
// terminates after at most 3 growth events per port, i.e. near-linearly in
// netlist size (measured in bench/bench_lint_scale.cpp).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "retime/moves.hpp"
#include "sim/port_map.hpp"
#include "ternary/trit.hpp"

namespace rtv {

/// A subset of {0, 1, X} as a 3-bit mask (bit = 1 << static_cast<int>(Trit)).
using TritSet = std::uint8_t;

inline constexpr TritSet kTritSetEmpty = 0;
inline constexpr TritSet kTritSetTop = 0b111;

constexpr TritSet trit_set_of(Trit t) {
  return static_cast<TritSet>(1u << static_cast<unsigned>(t));
}
constexpr bool trit_set_contains(TritSet s, Trit t) {
  return (s & trit_set_of(t)) != 0;
}
constexpr bool trit_set_is_singleton(TritSet s) {
  return s != 0 && (s & (s - 1)) == 0;
}

/// The unique element of a singleton set; nullopt otherwise.
std::optional<Trit> trit_set_singleton(TritSet s);

/// "{}", "{0}", "{0,X}", ... — for diagnostics and debugging.
std::string to_string_trit_set(TritSet s);

/// Convergence statistics of one fixpoint run (reported by `rtv lint` and
/// the serve lint job, and scaling-checked by bench_lint_scale).
struct DataflowStats {
  std::size_t num_ports = 0;      ///< dense ports in the netlist
  std::size_t iterations = 0;     ///< worklist pops until the fixpoint
  std::size_t updates = 0;        ///< port-set growth events
  std::size_t table_fallbacks = 0;///< table cells widened to ⊤ (cap blown)
};

/// The fixpoint: per-port value sets plus the port indexing that locates
/// them. Valid for the (structurally sound) netlist it was computed from,
/// which must outlive it and stay unmodified.
class DataflowResult {
 public:
  DataflowResult(const Netlist& netlist, PortMap ports,
                 std::vector<TritSet> sets, DataflowStats stats)
      : netlist_(&netlist), ports_(std::move(ports)), sets_(std::move(sets)),
        stats_(stats) {}

  const DataflowStats& stats() const { return stats_; }

  /// The fixpoint value set of an output port.
  TritSet set_for(PortRef port) const { return sets_[ports_.index(port)]; }

  /// The value set observed at an input pin (its driver's port set);
  /// ⊤ for an unconnected pin — anything could be there.
  TritSet pin_set(PinRef pin) const;

  /// The value set of primary output `po` (the set of its driver).
  TritSet output_set(NodeId po) const;

  /// True iff the latch can never leave X: its set is exactly {X}, so CLS
  /// initialization is impossible for it (RTV301).
  bool latch_stuck_at_x(NodeId latch) const {
    return set_for(PortRef(latch, 0)) == trit_set_of(Trit::kX);
  }

  /// The definite constant a port holds on every cycle of every run, if
  /// its set is a definite singleton (RTV302).
  std::optional<bool> constant_value(PortRef port) const;

 private:
  const Netlist* netlist_;
  PortMap ports_;
  std::vector<TritSet> sets_;
  DataflowStats stats_;
};

/// Knobs for the fixpoint engine.
struct DataflowOptions {
  /// Table cells are evaluated by enumerating the product of their pins'
  /// value sets (exactly lifting TruthTable::eval_ternary). Products larger
  /// than this cap are widened to ⊤ per output — always sound, never exact.
  std::size_t table_product_cap = 4096;
};

/// Runs the worklist fixpoint. Requires a structurally sound netlist in the
/// connectivity sense (every pin of a live cell resolvable); unconnected
/// pins are tolerated and read as ⊤. Combinational cycles do not diverge
/// (no topological order is needed) — ports fed only through such a cycle
/// stay ⊥, i.e. no CLS value is attributed to them.
DataflowResult run_dataflow(const Netlist& netlist,
                            const DataflowOptions& options = {});

// ---- static retiming-safety certification (RTV305) -------------------------

/// Verdict for one move of a plan: `certified` means the move provably
/// preserves the CLS-observable behaviour (Cor 5.3's conclusion) without
/// any engine run; `reason` names the static argument that proved it, or
/// why certification was declined.
struct MoveCertificate {
  bool certified = false;
  std::string reason;
};

/// Statically certifies each move of a feasible plan, replaying the plan on
/// a scratch copy so every move is judged at its own position. A move is
/// certified when one of three static arguments applies:
///   1. the element's function preserves all-X — Theorem 5.1's condition,
///      under which any retiming move leaves every CLS trace unchanged;
///   2. every output port of the element is unobservable (no path to a
///      primary output), so the move can only disturb dead logic;
///   3. the designs before and after the move have a whole-design static
///      proof: every paired primary output carries the same definite-or-X
///      singleton fixpoint set in both (each output is the same constant
///      trace in both designs).
/// Moves that cannot be applied on the scratch copy are not certified.
std::vector<MoveCertificate> certify_plan_moves(
    const Netlist& netlist, const std::vector<RetimingMove>& moves,
    const DataflowOptions& options = {});

/// Whole-design static CLS-equivalence proof: when every paired primary
/// output of `a` and `b` has the same singleton fixpoint set, both outputs
/// are that same value on every cycle of every run, so the designs are
/// CLS-equivalent — returns the one-line proof description. Returns nullopt
/// when the fixpoint cannot decide (which is *not* evidence of differing).
/// Requires equal primary-output counts.
std::optional<std::string> static_cls_equivalence_proof(
    const Netlist& a, const Netlist& b, const DataflowOptions& options = {});

}  // namespace rtv
