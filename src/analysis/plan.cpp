#include "analysis/plan.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "io/json.hpp"
#include "retime/graph.hpp"
#include "retime/sequencer.hpp"

namespace rtv {

namespace {

/// Static mirror of can_apply's junction-normal requirement on the element
/// itself: every output port drives exactly one pin. Sink *identities*
/// change as latches move, but counts are invariant (insert_on_wire and
/// bypass_and_remove both preserve them), so checking the original netlist
/// is exact at every plan position.
bool element_ports_single_sink(const Netlist& netlist, NodeId element,
                               std::string* detail) {
  for (std::uint32_t p = 0; p < netlist.num_ports(element); ++p) {
    const std::size_t sinks = netlist.sinks(PortRef(element, p)).size();
    if (sinks != 1) {
      *detail = "output port " + std::to_string(p) + " drives " +
                std::to_string(sinks) + " pins (need exactly 1)";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string PlanAnalysis::certificate() const {
  if (stats.preserves_safe_replacement()) {
    return "safe replacement (C ⊑ D, Cor 4.4)";
  }
  return "C^" + std::to_string(k()) + " ⊑ D (Thm 4.5)";
}

PlanAnalysis analyze_plan(const Netlist& netlist,
                          const std::vector<RetimingMove>& moves) {
  PlanAnalysis analysis;
  analysis.moves.reserve(moves.size());

  // Element well-formedness and classification are independent of the
  // replay, so they are always computed — even when the netlist fails the
  // replay preconditions below.
  std::vector<std::uint32_t> forward_counts(netlist.num_slots(), 0);
  for (const RetimingMove& move : moves) {
    PlanMoveCheck check;
    check.move = move;
    const NodeId e = move.element;
    if (!e.valid() || e.value >= netlist.num_slots() || netlist.is_dead(e)) {
      check.detail = "element is not a live netlist node";
    } else if (!is_combinational(netlist.kind(e))) {
      check.detail = std::string("element is a ") +
                     cell_kind_name(netlist.kind(e)) +
                     ", not a combinational cell";
    } else {
      check.element_ok = true;
      check.cls = classify_move(netlist, move);
      accumulate_move(move, check.cls, forward_counts, analysis.stats);
    }
    analysis.moves.push_back(std::move(check));
  }

  // Replay preconditions: the weight model is exact only for a structurally
  // sound junction-normal netlist (see the header comment).
  if (const auto violations = netlist.structural_violations();
      !violations.empty()) {
    analysis.precondition_error =
        "netlist fails structural lint (" +
        std::to_string(violations.size()) +
        " violation(s), first: " + violations.front().message + ")";
    return analysis;
  }
  if (!netlist.is_junction_normal()) {
    analysis.precondition_error =
        "netlist is not junction-normal (run junctionize() first)";
    return analysis;
  }
  // A sink-less latch sits on no retiming-graph edge, so its wire could not
  // be replayed; require every latch chain to reach a pin.
  for (const NodeId latch : netlist.latches()) {
    if (netlist.sinks(PortRef(latch, 0)).empty()) {
      analysis.precondition_error = "latch '" + netlist.name(latch) +
                                    "' drives nothing; its wire chain cannot "
                                    "be replayed";
      return analysis;
    }
  }
  analysis.analyzable = true;

  // Latch-count replay on the retiming graph. Weight deltas are applied
  // only for enabled moves; a disabled move is reported and skipped so the
  // rest of the plan still gets checked against a consistent state.
  const RetimeGraph graph =
      RetimeGraph::from_netlist(netlist, DelayModel::kZero);
  std::vector<int> weight;
  weight.reserve(graph.num_edges());
  for (const RetimeGraph::Edge& e : graph.edges()) weight.push_back(e.weight);

  bool all_enabled = true;
  for (PlanMoveCheck& check : analysis.moves) {
    if (!check.element_ok) {
      all_enabled = false;
      continue;
    }
    const NodeId e = check.move.element;
    if (!element_ports_single_sink(netlist, e, &check.detail)) {
      all_enabled = false;
      continue;
    }
    const std::uint32_t v = graph.vertex_of(e);
    const std::vector<std::uint32_t>& sources = graph.in_edges(v);
    const std::vector<std::uint32_t>& sinks = graph.out_edges(v);
    const bool forward = check.move.direction == MoveDirection::kForward;
    if (!forward && netlist.num_ports(e) == 0) {
      check.detail = "element has no output ports to pull a latch across";
      all_enabled = false;
      continue;
    }
    const std::vector<std::uint32_t>& need = forward ? sources : sinks;
    bool enabled = true;
    for (const std::uint32_t i : need) {
      if (weight[i] < 1) {
        check.detail = std::string(forward ? "input pin" : "output port") +
                       " wire " +
                       (forward ? std::to_string(graph.edge(i).dst_pin.pin)
                                : std::to_string(graph.edge(i).src_port.port)) +
                       " carries no latch at this plan position";
        enabled = false;
        break;
      }
    }
    if (!enabled) {
      all_enabled = false;
      continue;
    }
    check.enabled = true;
    // A self-loop edge appears on both sides; the net effect is zero, which
    // matches apply_move removing one latch at the pin and minting one at
    // the port of the same wire.
    for (const std::uint32_t i : (forward ? sources : sinks)) --weight[i];
    for (const std::uint32_t i : (forward ? sinks : sources)) ++weight[i];
  }
  analysis.feasible = all_enabled;
  return analysis;
}

// ---- JSON plan files -------------------------------------------------------

RetimingPlan plan_from_json(const std::string& text, const Netlist& netlist) {
  const JsonValue doc = parse_json(text);
  const JsonValue* moves = doc.find("moves");
  if (moves == nullptr || !moves->is_array()) {
    throw ParseError("plan JSON must be an object with a \"moves\" array");
  }
  RetimingPlan plan;
  plan.moves.reserve(moves->as_array().size());
  std::size_t index = 0;
  for (const JsonValue& entry : moves->as_array()) {
    const std::string at = "plan move " + std::to_string(index);
    if (!entry.is_object()) throw ParseError(at + ": expected an object");
    RetimingMove move;

    if (const JsonValue* name = entry.find("element");
        name != nullptr && name->is_string() && !name->as_string().empty()) {
      move.element = netlist.find_by_name(name->as_string());
      if (!move.element.valid()) {
        throw ParseError(at + ": no node named '" + name->as_string() + "'");
      }
    } else if (const JsonValue* node = entry.find("node"); node != nullptr) {
      const double raw = node->as_number();
      if (raw < 0 || raw >= static_cast<double>(netlist.num_slots()) ||
          raw != std::floor(raw)) {
        throw ParseError(at + ": \"node\" is not a valid node id");
      }
      move.element = NodeId(static_cast<std::uint32_t>(raw));
    } else {
      throw ParseError(at + ": needs an \"element\" name or a \"node\" id");
    }

    const JsonValue* direction = entry.find("direction");
    if (direction == nullptr || !direction->is_string()) {
      throw ParseError(at + ": needs a \"direction\" string");
    }
    move.direction = move_direction_from_string(direction->as_string());
    plan.moves.push_back(move);
    ++index;
  }
  return plan;
}

RetimingPlan load_plan(const std::string& path, const Netlist& netlist) {
  std::ifstream f(path);
  if (!f) throw Error("cannot open plan file '" + path + "'");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return plan_from_json(buffer.str(), netlist);
}

std::string plan_to_json(const Netlist& netlist,
                         const std::vector<RetimingMove>& moves) {
  std::ostringstream os;
  os << "{\n  \"moves\": [";
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const RetimingMove& m = moves[i];
    os << (i == 0 ? "\n" : ",\n") << "    {";
    const bool in_range = m.element.valid() &&
                          m.element.value < netlist.num_slots() &&
                          !netlist.is_dead(m.element);
    if (in_range && !netlist.name(m.element).empty()) {
      os << "\"element\": \"" << json_escape(netlist.name(m.element))
         << "\", ";
    }
    os << "\"node\": " << m.element.value << ", \"direction\": \""
       << to_string(m.direction) << "\"}";
  }
  os << (moves.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace rtv
