#include "netlist/cell.hpp"

#include "util/error.hpp"

namespace rtv {

const char* cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
      return "input";
    case CellKind::kOutput:
      return "output";
    case CellKind::kConst0:
      return "const0";
    case CellKind::kConst1:
      return "const1";
    case CellKind::kBuf:
      return "buf";
    case CellKind::kNot:
      return "not";
    case CellKind::kAnd:
      return "and";
    case CellKind::kOr:
      return "or";
    case CellKind::kNand:
      return "nand";
    case CellKind::kNor:
      return "nor";
    case CellKind::kXor:
      return "xor";
    case CellKind::kXnor:
      return "xnor";
    case CellKind::kMux:
      return "mux";
    case CellKind::kJunc:
      return "junc";
    case CellKind::kTable:
      return "table";
    case CellKind::kLatch:
      return "latch";
  }
  throw InternalError("corrupt CellKind value");
}

CellKind cell_kind_from_name(const std::string& name) {
  static const struct {
    const char* name;
    CellKind kind;
  } kTable[] = {
      {"input", CellKind::kInput},   {"output", CellKind::kOutput},
      {"const0", CellKind::kConst0}, {"const1", CellKind::kConst1},
      {"buf", CellKind::kBuf},       {"not", CellKind::kNot},
      {"and", CellKind::kAnd},       {"or", CellKind::kOr},
      {"nand", CellKind::kNand},     {"nor", CellKind::kNor},
      {"xor", CellKind::kXor},       {"xnor", CellKind::kXnor},
      {"mux", CellKind::kMux},       {"junc", CellKind::kJunc},
      {"table", CellKind::kTable},   {"latch", CellKind::kLatch},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) return entry.kind;
  }
  throw ParseError("unknown cell kind: '" + name + "'");
}

bool is_combinational(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kOutput:
    case CellKind::kLatch:
      return false;
    default:
      return true;
  }
}

bool is_variadic_gate(CellKind kind) {
  switch (kind) {
    case CellKind::kAnd:
    case CellKind::kOr:
    case CellKind::kNand:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
      return true;
    default:
      return false;
  }
}

bool fixed_pin_count(CellKind kind, unsigned& pins) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
      pins = 0;
      return true;
    case CellKind::kOutput:
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kJunc:
    case CellKind::kLatch:
      pins = 1;
      return true;
    case CellKind::kMux:
      pins = 3;
      return true;
    default:
      return false;
  }
}

bool fixed_port_count(CellKind kind, unsigned& ports) {
  switch (kind) {
    case CellKind::kOutput:
      ports = 0;
      return true;
    case CellKind::kJunc:
    case CellKind::kTable:
      return false;
    default:
      ports = 1;
      return true;
  }
}

}  // namespace rtv
