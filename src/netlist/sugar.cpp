#include "netlist/sugar.hpp"

namespace rtv {

NodeId add_latch_with_sync_reset(Netlist& netlist, PortRef reset, PortRef data,
                                 const std::string& name) {
  const NodeId inv = netlist.add_gate(CellKind::kNot, 0, name.empty() ? "" : name + "_nr");
  const NodeId gate = netlist.add_gate(CellKind::kAnd, 2,
                                       name.empty() ? "" : name + "_rst");
  const NodeId latch = netlist.add_latch(name);
  netlist.connect(reset, PinRef(inv, 0));
  netlist.connect(PortRef(inv, 0), PinRef(gate, 0));
  netlist.connect(data, PinRef(gate, 1));
  netlist.connect(PortRef(gate, 0), PinRef(latch, 0));
  return latch;
}

NodeId add_latch_with_sync_set(Netlist& netlist, PortRef set, PortRef data,
                               const std::string& name) {
  const NodeId gate =
      netlist.add_gate(CellKind::kOr, 2, name.empty() ? "" : name + "_set");
  const NodeId latch = netlist.add_latch(name);
  netlist.connect(set, PinRef(gate, 0));
  netlist.connect(data, PinRef(gate, 1));
  netlist.connect(PortRef(gate, 0), PinRef(latch, 0));
  return latch;
}

NodeId add_latch_with_enable(Netlist& netlist, PortRef enable, PortRef data,
                             const std::string& name) {
  const NodeId mux =
      netlist.add_gate(CellKind::kMux, 0, name.empty() ? "" : name + "_en");
  const NodeId latch = netlist.add_latch(name);
  netlist.connect(enable, PinRef(mux, 0));           // select
  netlist.connect(PortRef(latch, 0), PinRef(mux, 1));  // hold Q
  netlist.connect(data, PinRef(mux, 2));             // load D
  netlist.connect(PortRef(mux, 0), PinRef(latch, 0));
  return latch;
}

}  // namespace rtv
