#pragma once
// Modeling helpers for latches with synchronous control pins.
//
// The paper's introduction: "latches in the design which have synchronous
// control pins (e.g., set, reset, load enable) are modelled as simple
// latches surrounded by additional gates. For example, a synchronous reset
// latch with positive logic reset signal R and data input signal D is
// modelled by a simple latch and an AND gate with the AND gate fed by
// not(R) and D." These helpers build exactly those shapes, so designs in
// the common controller/datapath style can be assembled without hand-wiring
// the control gates.
//
// Each helper returns the latch node; its output port 0 carries Q. Wiring
// may create implicit multi-fanout (e.g. the enable feedback) — run
// Netlist::junctionize() after building.

#include "netlist/netlist.hpp"

namespace rtv {

/// Q' = D and not R   (synchronous reset, active-high R).
NodeId add_latch_with_sync_reset(Netlist& netlist, PortRef reset, PortRef data,
                                 const std::string& name = "");

/// Q' = D or S        (synchronous set, active-high S).
NodeId add_latch_with_sync_set(Netlist& netlist, PortRef set, PortRef data,
                               const std::string& name = "");

/// Q' = E ? D : Q     (load enable; builds the Q feedback mux).
NodeId add_latch_with_enable(Netlist& netlist, PortRef enable, PortRef data,
                             const std::string& name = "");

}  // namespace rtv
