#include <algorithm>
#include <sstream>

#include "netlist/netlist.hpp"

namespace rtv {

std::size_t Netlist::junctionize() {
  // Snapshot the multi-fanout ports first; the junctions we insert have
  // single-sink ports, so no rescan is needed.
  std::vector<PortRef> multi;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    for (std::uint32_t p = 0; p < n.num_ports(); ++p) {
      if (n.fanout[p].size() > 1) multi.push_back(PortRef(NodeId(i), p));
    }
  }
  for (const PortRef& port : multi) {
    const std::vector<PinRef> old_sinks = sinks(port);
    const NodeId j = add_junc(static_cast<unsigned>(old_sinks.size()));
    for (const PinRef& s : old_sinks) disconnect(s);
    connect(port, PinRef(j, 0));
    for (std::uint32_t k = 0; k < old_sinks.size(); ++k) {
      connect(PortRef(j, k), old_sinks[k]);
    }
  }
  return multi.size();
}

bool Netlist::is_junction_normal() const {
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    for (const auto& sinks : n.fanout) {
      if (sinks.size() > 1) return false;
    }
  }
  return true;
}

Netlist Netlist::compacted(std::vector<NodeId>* old_to_new) const {
  Netlist out;
  std::vector<NodeId> map(nodes_.size());
  // Creation order equals slot order, so iterating slots in increasing order
  // preserves the relative order of PIs, POs and latches (and hence the
  // layout of simulation vectors).
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    NodeId nid;
    switch (n.kind) {
      case CellKind::kInput:
        nid = out.add_input(n.name);
        break;
      case CellKind::kOutput:
        nid = out.add_output(n.name);
        break;
      case CellKind::kConst0:
        nid = out.add_const(false, n.name);
        break;
      case CellKind::kConst1:
        nid = out.add_const(true, n.name);
        break;
      case CellKind::kJunc:
        nid = out.add_junc(n.num_ports(), n.name);
        break;
      case CellKind::kLatch:
        nid = out.add_latch(n.name);
        break;
      case CellKind::kTable:
        nid = out.add_table_cell(out.add_table(table(n.table)), n.name);
        break;
      default:
        nid = out.add_gate(n.kind, n.num_pins(), n.name);
        break;
    }
    map[i] = nid;
  }
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
      const PortRef drv = n.fanin[pin];
      if (!drv.valid()) continue;
      RTV_CHECK_MSG(!nodes_[drv.node.value].dead,
                    "live node driven by dead node");
      out.connect(PortRef(map[drv.node.value], drv.port),
                  PinRef(map[i], pin));
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return out;
}

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kUnconnectedPin: return "unconnected-pin";
    case ViolationKind::kMultiDrivenPin: return "multi-driven-pin";
    case ViolationKind::kBadArity: return "bad-arity";
    case ViolationKind::kBadTable: return "bad-table";
    case ViolationKind::kBrokenCrossLink: return "broken-cross-link";
    case ViolationKind::kIndexOutOfSync: return "index-out-of-sync";
    case ViolationKind::kCombinationalCycle: return "combinational-cycle";
    case ViolationKind::kImplicitFanout: return "implicit-fanout";
  }
  return "unknown";
}

std::vector<StructuralViolation> Netlist::structural_violations(
    bool require_junction_normal) const {
  std::vector<StructuralViolation> out;
  const auto emit = [&](ViolationKind kind, NodeId node, std::string what) {
    out.push_back(StructuralViolation{kind, node, std::move(what)});
  };
  // How many ports claim each pin as a sink; a count above one is a
  // multi-driven wire regardless of which driver the fanin side records.
  std::vector<std::vector<std::uint32_t>> drive_count(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    drive_count[i].assign(nodes_[i].dead ? 0 : nodes_[i].num_pins(), 0);
  }
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].dead) continue;
    for (const auto& port_sinks : nodes_[i].fanout) {
      for (const PinRef& s : port_sinks) {
        if (s.node.value < nodes_.size() && !nodes_[s.node.value].dead &&
            s.pin < nodes_[s.node.value].num_pins()) {
          ++drive_count[s.node.value][s.pin];
        }
      }
    }
  }

  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.dead) continue;
    const NodeId id(i);
    const std::string where = " (node '" + n.name + "')";
    // Arity legality per kind.
    unsigned pins = 0, ports = 0;
    if (fixed_pin_count(n.kind, pins) && n.num_pins() != pins) {
      emit(ViolationKind::kBadArity, id, "wrong pin count" + where);
    }
    if (fixed_port_count(n.kind, ports) && n.num_ports() != ports) {
      emit(ViolationKind::kBadArity, id, "wrong port count" + where);
    }
    if (is_variadic_gate(n.kind) && n.num_pins() < 1) {
      emit(ViolationKind::kBadArity, id, "variadic gate with no pins" + where);
    }
    if (n.kind == CellKind::kJunc && n.num_ports() < 1) {
      emit(ViolationKind::kBadArity, id, "junction with no ports" + where);
    }
    if (n.kind == CellKind::kTable) {
      if (!n.table.valid() || n.table.value >= tables_.size()) {
        emit(ViolationKind::kBadTable, id, "dangling table id" + where);
      } else {
        const TruthTable& t = tables_[n.table.value];
        if (n.num_pins() != t.num_inputs() ||
            n.num_ports() != t.num_outputs()) {
          emit(ViolationKind::kBadTable, id, "table cell arity mismatch" + where);
        }
      }
    }
    // Connectivity and cross-link consistency.
    for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
      const PortRef drv = n.fanin[pin];
      if (!drv.valid()) {
        emit(ViolationKind::kUnconnectedPin, id,
             "unconnected input pin " + std::to_string(pin) + where);
        continue;
      }
      if (drv.node.value >= nodes_.size() || nodes_[drv.node.value].dead) {
        emit(ViolationKind::kBrokenCrossLink, id,
             "pin driven by dead/out-of-range node" + where);
        continue;
      }
      const Node& src = nodes_[drv.node.value];
      if (drv.port >= src.num_ports()) {
        emit(ViolationKind::kBrokenCrossLink, id,
             "driver port out of range" + where);
        continue;
      }
      const auto& fo = src.fanout[drv.port];
      if (std::find(fo.begin(), fo.end(), PinRef(id, pin)) == fo.end()) {
        emit(ViolationKind::kBrokenCrossLink, id,
             "fanin/fanout cross-link broken" + where);
      }
      if (drive_count[i][pin] > 1) {
        emit(ViolationKind::kMultiDrivenPin, id,
             "input pin " + std::to_string(pin) + " driven by " +
                 std::to_string(drive_count[i][pin]) + " ports" + where);
      }
    }
    for (std::uint32_t port = 0; port < n.num_ports(); ++port) {
      for (const PinRef& s : n.fanout[port]) {
        if (s.node.value >= nodes_.size() || nodes_[s.node.value].dead) {
          emit(ViolationKind::kBrokenCrossLink, id,
               "fanout to dead/out-of-range node" + where);
          continue;
        }
        const Node& dst = nodes_[s.node.value];
        if (s.pin >= dst.num_pins()) {
          emit(ViolationKind::kBrokenCrossLink, id,
               "fanout pin out of range" + where);
          continue;
        }
        if (dst.fanin[s.pin] != PortRef(id, port)) {
          emit(ViolationKind::kBrokenCrossLink, id,
               "fanout/fanin cross-link broken" + where);
        }
      }
      if (require_junction_normal && n.fanout[port].size() > 1) {
        emit(ViolationKind::kImplicitFanout, id,
             "implicit multi-fanout port in junction-normal mode" + where);
      }
    }
  }
  // Index vectors consistent with node kinds.
  auto check_index = [&](const std::vector<NodeId>& index, CellKind kind,
                         const char* label) {
    std::size_t live_count = 0;
    for (const Node& n : nodes_) {
      if (!n.dead && n.kind == kind) ++live_count;
    }
    if (index.size() != live_count) {
      emit(ViolationKind::kIndexOutOfSync, NodeId(),
           std::string(label) + " index out of sync");
    }
    for (NodeId id : index) {
      if (!id.valid() || id.value >= nodes_.size() || nodes_[id.value].dead ||
          nodes_[id.value].kind != kind) {
        emit(ViolationKind::kIndexOutOfSync, NodeId(),
             std::string(label) + " index entry invalid");
      }
    }
  };
  check_index(inputs_, CellKind::kInput, "primary input");
  check_index(outputs_, CellKind::kOutput, "primary output");
  check_index(latches_, CellKind::kLatch, "latch");

  // Cycle detection walks fanout links; it is only meaningful (and only
  // memory-safe) once those links are structurally sound, so skip it when
  // any cross-link defect was found.
  const bool links_sound =
      std::none_of(out.begin(), out.end(), [](const StructuralViolation& v) {
        return v.kind == ViolationKind::kBrokenCrossLink;
      });
  if (links_sound) {
    const NodeId witness = combinational_cycle_witness();
    if (witness.valid()) {
      emit(ViolationKind::kCombinationalCycle, witness,
           "combinational cycle (a cycle without a latch) through node '" +
               nodes_[witness.value].name + "'");
    }
  }
  return out;
}

void Netlist::check_valid(bool require_junction_normal) const {
  const std::vector<StructuralViolation> violations =
      structural_violations(require_junction_normal);
  if (!violations.empty()) {
    throw InvalidArgument("invalid netlist: " + violations.front().message);
  }
}

bool Netlist::every_cycle_has_latch() const {
  return !combinational_cycle_witness().valid();
}

NodeId Netlist::combinational_cycle_witness() const {
  // Any cycle that crosses a latch is broken when we only follow edges whose
  // head is a combinational node, because latch fanin edges are skipped.
  // So: a combinational cycle exists iff DFS over comb-to-comb edges finds a
  // back edge; the node the back edge lands on witnesses the cycle.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes_.size(), Color::kWhite);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (node, port idx cursor)
  for (std::uint32_t start = 0; start < nodes_.size(); ++start) {
    if (nodes_[start].dead || !is_combinational(nodes_[start].kind)) continue;
    if (color[start] != Color::kWhite) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [u, cursor] = stack.back();
      // Flatten (port, sink) pairs into a single cursor over all sinks.
      const Node& un = nodes_[u];
      std::uint32_t seen = 0;
      PinRef next;
      bool found = false;
      for (const auto& port_sinks : un.fanout) {
        for (const PinRef& s : port_sinks) {
          if (seen++ == cursor) {
            next = s;
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) {
        color[u] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      ++cursor;
      const std::uint32_t v = next.node.value;
      if (!is_combinational(nodes_[v].kind)) continue;  // latch/PO breaks path
      if (color[v] == Color::kGray) return NodeId(v);   // combinational cycle
      if (color[v] == Color::kWhite) {
        color[v] = Color::kGray;
        stack.emplace_back(v, 0);
      }
    }
  }
  return NodeId();
}

std::size_t Netlist::sweep_unobservable() {
  // Backward closure from primary outputs: a node is observable iff some
  // output port of it drives an observable node's pin.
  std::vector<bool> observable(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  for (const NodeId po : outputs_) {
    observable[po.value] = true;
    stack.push_back(po.value);
  }
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (const PortRef& drv : nodes_[v].fanin) {
      if (!drv.valid()) continue;
      if (!observable[drv.node.value]) {
        observable[drv.node.value] = true;
        stack.push_back(drv.node.value);
      }
    }
  }
  std::size_t removed = 0;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.dead || observable[i]) continue;
    if (n.kind == CellKind::kInput) continue;  // interface stays
    // Detach from any observable drivers, then tombstone.
    for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
      if (n.fanin[pin].valid()) disconnect(PinRef(NodeId(i), pin));
    }
    // Unobservable nodes never drive observable ones, so remaining fanout
    // entries point at other dead-to-be nodes; clear the cross-links.
    for (auto& sinks : n.fanout) {
      for (const PinRef& s : std::vector<PinRef>(sinks)) {
        disconnect(s);
      }
    }
    n.dead = true;
    ++removed;
    if (n.kind == CellKind::kLatch) {
      const auto it = std::find(latches_.begin(), latches_.end(), NodeId(i));
      RTV_CHECK(it != latches_.end());
      latches_.erase(it);
    }
  }
  return removed;
}

std::size_t Netlist::propagate_constants() {
  // Local rewrite helpers. replace_with_port reroutes all sinks of a
  // single-output node to `src` and tombstones the node; replace_with_const
  // routes them to a fresh constant cell.
  const auto detach_fanins = [&](NodeId id) {
    Node& n = nodes_[id.value];
    for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
      if (n.fanin[pin].valid()) disconnect(PinRef(id, pin));
    }
  };
  const auto replace_with_port = [&](NodeId id, PortRef src) {
    Node& n = nodes_[id.value];
    RTV_CHECK(n.num_ports() == 1);
    const std::vector<PinRef> sinks = n.fanout[0];
    for (const PinRef& s : sinks) disconnect(s);
    detach_fanins(id);
    for (const PinRef& s : sinks) connect(src, s);
    n.dead = true;
  };
  const auto replace_with_const = [&](NodeId id, bool value) {
    replace_with_port(id, PortRef(add_const(value), 0));
  };
  const auto const_value = [&](PortRef p, bool& value) {
    const CellKind k = nodes_[p.node.value].kind;
    if (k == CellKind::kConst0) {
      value = false;
      return true;
    }
    if (k == CellKind::kConst1) {
      value = true;
      return true;
    }
    return false;
  };

  std::size_t simplified = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      const NodeId id(i);
      const Node& n = nodes_[i];
      if (n.dead || !is_combinational(n.kind) || n.num_ports() != 1) continue;
      if (n.kind == CellKind::kConst0 || n.kind == CellKind::kConst1) continue;
      if (n.fanout[0].empty()) continue;  // dead fanout: sweep's job
      bool all_connected = true;
      for (const PortRef& d : n.fanin) all_connected &= d.valid();
      if (!all_connected) continue;

      // Gather constant knowledge about the pins.
      unsigned const_pins = 0;
      bool saw0 = false, saw1 = false;
      std::uint64_t minterm = 0;
      PortRef non_const_driver;
      for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
        bool v = false;
        if (const_value(n.fanin[pin], v)) {
          ++const_pins;
          (v ? saw1 : saw0) = true;
          if (v) minterm |= (1ULL << pin);
        } else {
          non_const_driver = n.fanin[pin];
        }
      }

      if (n.kind == CellKind::kBuf) {
        replace_with_port(id, n.fanin[0]);
        ++simplified;
        changed = true;
        continue;
      }
      if (const_pins == n.num_pins()) {
        // Fully constant cell: evaluate.
        replace_with_const(id, cell_function(id).eval_bit(minterm, 0));
        ++simplified;
        changed = true;
        continue;
      }
      // Dominant values and neutral-element forwarding.
      const unsigned live_pins = n.num_pins() - const_pins;
      switch (n.kind) {
        case CellKind::kAnd:
        case CellKind::kNand:
          if (saw0) {
            replace_with_const(id, n.kind == CellKind::kNand);
            ++simplified;
            changed = true;
          } else if (saw1 && live_pins == 1 && n.kind == CellKind::kAnd) {
            replace_with_port(id, non_const_driver);
            ++simplified;
            changed = true;
          }
          break;
        case CellKind::kOr:
        case CellKind::kNor:
          if (saw1) {
            replace_with_const(id, n.kind == CellKind::kOr);
            ++simplified;
            changed = true;
          } else if (saw0 && live_pins == 1 && n.kind == CellKind::kOr) {
            replace_with_port(id, non_const_driver);
            ++simplified;
            changed = true;
          }
          break;
        case CellKind::kMux: {
          bool sel = false;
          if (const_value(n.fanin[0], sel)) {
            replace_with_port(id, n.fanin[sel ? 2 : 1]);
            ++simplified;
            changed = true;
          }
          break;
        }
        default:
          break;  // XOR/XNOR/NOT/tables: only the all-const case applies
      }
    }
  }
  junctionize();
  return simplified;
}

std::size_t Netlist::trim_dangling() {
  std::size_t touched = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      const NodeId id(i);
      Node& n = nodes_[i];
      if (n.dead || n.kind == CellKind::kInput || n.kind == CellKind::kOutput) {
        continue;
      }
      std::uint32_t live_ports = 0;
      for (const auto& sinks : n.fanout) live_ports += !sinks.empty();
      if (live_ports == n.num_ports()) continue;

      if (live_ports == 0) {
        // Fully dangling: drop the node.
        for (std::uint32_t pin = 0; pin < n.num_pins(); ++pin) {
          if (n.fanin[pin].valid()) disconnect(PinRef(id, pin));
        }
        n.dead = true;
        if (n.kind == CellKind::kLatch) {
          const auto it = std::find(latches_.begin(), latches_.end(), id);
          RTV_CHECK(it != latches_.end());
          latches_.erase(it);
        }
        ++touched;
        changed = true;
        continue;
      }
      if (n.kind != CellKind::kJunc) continue;  // partial: only juncs shrink

      // Shrink the junction to its used branches.
      const PortRef drv = n.fanin[0];
      std::vector<PinRef> used;
      for (const auto& sinks : n.fanout) {
        for (const PinRef& s : sinks) used.push_back(s);
      }
      for (const PinRef& s : std::vector<PinRef>(used)) disconnect(s);
      disconnect(PinRef(id, 0));
      n.dead = true;
      if (used.size() == 1) {
        connect(drv, used[0]);
      } else {
        const NodeId smaller =
            add_junc(static_cast<unsigned>(used.size()), nodes_[i].name);
        connect(drv, PinRef(smaller, 0));
        for (std::uint32_t k = 0; k < used.size(); ++k) {
          connect(PortRef(smaller, k), used[k]);
        }
      }
      ++touched;
      changed = true;
    }
  }
  return touched;
}

bool Netlist::all_cells_preserve_all_x() const {
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    switch (n.kind) {
      case CellKind::kConst0:
      case CellKind::kConst1:
        return false;
      case CellKind::kTable:
        if (!tables_[n.table.value].preserves_all_x()) return false;
        break;
      default:
        break;  // all primitive gates, junctions and latches preserve all-X
    }
  }
  return true;
}

}  // namespace rtv
