#pragma once
// Cell kinds of the gate-level library (paper Section 3.2).
//
// The library contains combinational gates, edge-triggered latches without
// set/reset (the paper's model deliberately avoids requiring reset lines),
// explicit fanout junctions (JUNC), and generic multi-output table cells.
// Latches with synchronous control pins are modelled, as in the paper's
// introduction, by a simple latch surrounded by gates (see gen/datapath).

#include <cstdint>
#include <string>

namespace rtv {

enum class CellKind : std::uint8_t {
  kInput,   ///< primary input: 0 pins, 1 output port
  kOutput,  ///< primary output: 1 pin, 0 output ports
  kConst0,  ///< constant 0: 0 pins, 1 port (non-justifiable)
  kConst1,  ///< constant 1: 0 pins, 1 port (non-justifiable)
  kBuf,     ///< buffer: 1 pin, 1 port
  kNot,     ///< inverter
  kAnd,     ///< n-input AND (n >= 1)
  kOr,      ///< n-input OR
  kNand,    ///< n-input NAND
  kNor,     ///< n-input NOR
  kXor,     ///< n-input XOR (odd parity)
  kXnor,    ///< n-input XNOR (even parity)
  kMux,     ///< 2:1 mux, pins (s, a, b), out = s ? b : a
  kJunc,    ///< fanout junction: 1 pin, k ports, all copies of the input
  kTable,   ///< generic multi-output cell defined by a TruthTable
  kLatch,   ///< edge-triggered latch: 1 pin, 1 port, no set/reset
};

/// Short lower-case mnemonic ("and", "junc", ...), stable across versions;
/// used by the .rnl text format.
const char* cell_kind_name(CellKind kind);

/// Inverse of cell_kind_name. Throws ParseError for unknown names.
CellKind cell_kind_from_name(const std::string& name);

/// True for every kind that computes a combinational function
/// (everything except kInput, kOutput and kLatch).
bool is_combinational(CellKind kind);

/// True for the variadic single-output logic gates (kAnd..kXnor).
bool is_variadic_gate(CellKind kind);

/// True if the kind has a fixed input-pin count; returns that count via
/// `pins`. Variadic gates, junctions and table cells return false.
bool fixed_pin_count(CellKind kind, unsigned& pins);

/// True if the kind has a fixed output-port count; returns it via `ports`.
bool fixed_port_count(CellKind kind, unsigned& ports);

}  // namespace rtv
