#include "netlist/netlist.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

Node& Netlist::node_ref(NodeId id) {
  RTV_REQUIRE(id.valid() && id.value < nodes_.size(), "NodeId out of range");
  return nodes_[id.value];
}

const Node& Netlist::node_ref(NodeId id) const {
  RTV_REQUIRE(id.valid() && id.value < nodes_.size(), "NodeId out of range");
  return nodes_[id.value];
}

std::string Netlist::fresh_name(const char* prefix) {
  return std::string(prefix) + "_" + std::to_string(name_counter_++);
}

NodeId Netlist::new_node(CellKind kind, unsigned pins, unsigned ports,
                         std::string name) {
  Node n;
  n.kind = kind;
  n.name = name.empty() ? fresh_name(cell_kind_name(kind)) : std::move(name);
  n.fanin.resize(pins);
  n.fanout.resize(ports);
  nodes_.push_back(std::move(n));
  return NodeId(static_cast<std::uint32_t>(nodes_.size() - 1));
}

NodeId Netlist::add_input(std::string name) {
  const NodeId id = new_node(CellKind::kInput, 0, 1, std::move(name));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_output(std::string name) {
  const NodeId id = new_node(CellKind::kOutput, 1, 0, std::move(name));
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value, std::string name) {
  return new_node(value ? CellKind::kConst1 : CellKind::kConst0, 0, 1,
                  std::move(name));
}

NodeId Netlist::add_gate(CellKind kind, unsigned fanin, std::string name) {
  unsigned pins = 0;
  if (fixed_pin_count(kind, pins)) {
    RTV_REQUIRE(kind == CellKind::kBuf || kind == CellKind::kNot ||
                    kind == CellKind::kMux,
                "add_gate only accepts logic gate kinds");
    RTV_REQUIRE(fanin == 0 || fanin == pins,
                "fanin does not match the gate's fixed arity");
  } else {
    RTV_REQUIRE(is_variadic_gate(kind), "add_gate only accepts gate kinds");
    RTV_REQUIRE(fanin >= 1, "variadic gate needs fanin >= 1");
    pins = fanin;
  }
  return new_node(kind, pins, 1, std::move(name));
}

NodeId Netlist::add_junc(unsigned width, std::string name) {
  RTV_REQUIRE(width >= 1, "junction width must be >= 1");
  return new_node(CellKind::kJunc, 1, width, std::move(name));
}

NodeId Netlist::add_latch(std::string name) {
  const NodeId id = new_node(CellKind::kLatch, 1, 1, std::move(name));
  latches_.push_back(id);
  return id;
}

TableId Netlist::add_table(TruthTable table) {
  // Dedupe identical functions so cell_function comparisons stay cheap.
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i] == table) return TableId(static_cast<std::uint32_t>(i));
  }
  tables_.push_back(std::move(table));
  return TableId(static_cast<std::uint32_t>(tables_.size() - 1));
}

NodeId Netlist::add_table_cell(TableId table, std::string name) {
  const TruthTable& t = this->table(table);
  const NodeId id =
      new_node(CellKind::kTable, t.num_inputs(), t.num_outputs(),
               std::move(name));
  node_ref(id).table = table;
  return id;
}

void Netlist::connect(PortRef from, PinRef to) {
  Node& src = node_ref(from.node);
  Node& dst = node_ref(to.node);
  RTV_REQUIRE(!src.dead && !dst.dead, "connect on a dead node");
  RTV_REQUIRE(from.port < src.num_ports(), "source port out of range");
  RTV_REQUIRE(to.pin < dst.num_pins(), "sink pin out of range");
  RTV_REQUIRE(!dst.fanin[to.pin].valid(), "sink pin already connected");
  dst.fanin[to.pin] = from;
  src.fanout[from.port].push_back(to);
}

void Netlist::connect(NodeId from_node, NodeId to_node, std::uint32_t pin) {
  connect(PortRef(from_node, 0), PinRef(to_node, pin));
}

void Netlist::disconnect(PinRef to) {
  Node& dst = node_ref(to.node);
  RTV_REQUIRE(to.pin < dst.num_pins(), "sink pin out of range");
  const PortRef from = dst.fanin[to.pin];
  RTV_REQUIRE(from.valid(), "pin is not connected");
  dst.fanin[to.pin] = PortRef();
  auto& sinks = node_ref(from.node).fanout[from.port];
  const auto it = std::find(sinks.begin(), sinks.end(), to);
  RTV_CHECK_MSG(it != sinks.end(), "fanout list out of sync with fanin");
  sinks.erase(it);
}

NodeId Netlist::insert_on_wire(PortRef driver, PinRef sink, CellKind kind,
                               std::string name) {
  RTV_REQUIRE(kind == CellKind::kLatch || kind == CellKind::kBuf,
              "insert_on_wire requires a 1-pin/1-port kind");
  RTV_REQUIRE(this->driver(sink) == driver,
              "insert_on_wire: sink is not driven by the given port");
  const NodeId mid = (kind == CellKind::kLatch) ? add_latch(std::move(name))
                                                : add_gate(kind, 0, std::move(name));
  disconnect(sink);
  connect(driver, PinRef(mid, 0));
  connect(PortRef(mid, 0), sink);
  return mid;
}

void Netlist::bypass_and_remove(NodeId id) {
  Node& n = node_ref(id);
  RTV_REQUIRE(!n.dead, "bypass_and_remove on a dead node");
  RTV_REQUIRE(n.num_pins() == 1 && n.num_ports() == 1,
              "bypass_and_remove requires a 1-pin/1-port node");
  const PortRef drv = n.fanin[0];
  RTV_REQUIRE(drv.valid(), "bypass_and_remove: node has no driver");
  const std::vector<PinRef> downstream = n.fanout[0];
  for (const PinRef& sink : downstream) disconnect(sink);
  disconnect(PinRef(id, 0));
  for (const PinRef& sink : downstream) connect(drv, sink);
  n.dead = true;
  if (n.kind == CellKind::kLatch) {
    const auto it = std::find(latches_.begin(), latches_.end(), id);
    RTV_CHECK(it != latches_.end());
    latches_.erase(it);
  }
}

PortRef Netlist::driver(PinRef pin) const {
  const Node& n = node_ref(pin.node);
  RTV_REQUIRE(pin.pin < n.num_pins(), "pin index out of range");
  return n.fanin[pin.pin];
}

const std::vector<PinRef>& Netlist::sinks(PortRef port) const {
  const Node& n = node_ref(port.node);
  RTV_REQUIRE(port.port < n.num_ports(), "port index out of range");
  return n.fanout[port.port];
}

PinRef Netlist::sole_sink(PortRef port) const {
  const auto& s = sinks(port);
  RTV_REQUIRE(s.size() == 1, "port does not have exactly one sink");
  return s[0];
}

std::size_t Netlist::num_live_nodes() const {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    if (!n.dead) ++count;
  }
  return count;
}

std::size_t Netlist::num_gates() const {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    if (!n.dead && is_combinational(n.kind)) ++count;
  }
  return count;
}

std::vector<NodeId> Netlist::live_nodes() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].dead) ids.push_back(NodeId(i));
  }
  return ids;
}

const TruthTable& Netlist::table(TableId id) const {
  RTV_REQUIRE(id.valid() && id.value < tables_.size(), "TableId out of range");
  return tables_[id.value];
}

TruthTable Netlist::cell_function(NodeId id) const {
  const Node& n = node_ref(id);
  RTV_REQUIRE(is_combinational(n.kind),
              "cell_function is defined for combinational cells only");
  switch (n.kind) {
    case CellKind::kConst0:
      return TruthTable::const0();
    case CellKind::kConst1:
      return TruthTable::const1();
    case CellKind::kBuf:
      return TruthTable::buf();
    case CellKind::kNot:
      return TruthTable::inv();
    case CellKind::kAnd:
      return TruthTable::and_gate(n.num_pins());
    case CellKind::kOr:
      return TruthTable::or_gate(n.num_pins());
    case CellKind::kNand:
      return TruthTable::nand_gate(n.num_pins());
    case CellKind::kNor:
      return TruthTable::nor_gate(n.num_pins());
    case CellKind::kXor:
      return TruthTable::xor_gate(n.num_pins());
    case CellKind::kXnor:
      return TruthTable::xnor_gate(n.num_pins());
    case CellKind::kMux:
      return TruthTable::mux();
    case CellKind::kJunc:
      return TruthTable::junc(n.num_ports());
    case CellKind::kTable:
      return table(n.table);
    default:
      throw InternalError("unhandled combinational kind");
  }
}

bool Netlist::is_justifiable(NodeId id) const {
  const Node& n = node_ref(id);
  RTV_REQUIRE(is_combinational(n.kind),
              "justifiability is defined for combinational cells only");
  switch (n.kind) {
    case CellKind::kConst0:
    case CellKind::kConst1:
      return false;  // single reachable output vector
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kAnd:
    case CellKind::kOr:
    case CellKind::kNand:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
    case CellKind::kMux:
      return true;  // non-constant single-output gates reach both 0 and 1
    case CellKind::kJunc:
      return n.num_ports() == 1;  // JUNC_1 degenerates to a buffer
    case CellKind::kTable:
      return table(n.table).is_justifiable();
    default:
      throw InternalError("unhandled combinational kind");
  }
}

void Netlist::set_name(NodeId id, std::string name) {
  node_ref(id).name = std::move(name);
}

NodeId Netlist::find_by_name(const std::string& name) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].dead && nodes_[i].name == name) return NodeId(i);
  }
  return NodeId();
}

std::string Netlist::summary() const {
  std::ostringstream os;
  os << "netlist: " << inputs_.size() << " PI, " << outputs_.size() << " PO, "
     << num_latches() << " latches, " << num_gates() << " gates";
  return os.str();
}

}  // namespace rtv
