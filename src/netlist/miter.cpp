#include "netlist/miter.hpp"

namespace rtv {

namespace {

/// Copies `src` into `dst`, remapping ids; primary inputs are not created
/// (the caller supplies shared drivers), primary outputs are recorded
/// rather than created. Returns the PO driver ports in order.
std::vector<PortRef> splice_design(Netlist& dst, const Netlist& src,
                                   const std::vector<PortRef>& shared_inputs,
                                   const std::string& prefix) {
  std::vector<PortRef> input_map(src.primary_inputs().size());
  for (std::size_t i = 0; i < shared_inputs.size(); ++i) {
    input_map[i] = shared_inputs[i];
  }
  std::vector<NodeId> map(src.num_slots());
  for (std::uint32_t i = 0; i < src.num_slots(); ++i) {
    const NodeId id(i);
    if (src.is_dead(id)) continue;
    const Node& node = src.node(id);
    switch (node.kind) {
      case CellKind::kInput:
      case CellKind::kOutput:
        break;  // handled via maps
      case CellKind::kConst0:
        map[i] = dst.add_const(false, prefix + node.name);
        break;
      case CellKind::kConst1:
        map[i] = dst.add_const(true, prefix + node.name);
        break;
      case CellKind::kJunc:
        map[i] = dst.add_junc(node.num_ports(), prefix + node.name);
        break;
      case CellKind::kLatch:
        map[i] = dst.add_latch(prefix + node.name);
        break;
      case CellKind::kTable:
        map[i] = dst.add_table_cell(dst.add_table(src.table(node.table)),
                                    prefix + node.name);
        break;
      default:
        map[i] = dst.add_gate(node.kind, node.num_pins(), prefix + node.name);
        break;
    }
  }
  const auto mapped_port = [&](PortRef p) {
    if (src.kind(p.node) == CellKind::kInput) {
      // Position of this PI in src's input list.
      for (std::size_t i = 0; i < src.primary_inputs().size(); ++i) {
        if (src.primary_inputs()[i] == p.node) return input_map[i];
      }
      throw InternalError("input not found in PI list");
    }
    return PortRef(map[p.node.value], p.port);
  };
  for (std::uint32_t i = 0; i < src.num_slots(); ++i) {
    const NodeId id(i);
    if (src.is_dead(id)) continue;
    const Node& node = src.node(id);
    if (node.kind == CellKind::kInput || node.kind == CellKind::kOutput) {
      continue;
    }
    for (std::uint32_t pin = 0; pin < node.num_pins(); ++pin) {
      dst.connect(mapped_port(node.fanin[pin]), PinRef(map[i], pin));
    }
  }
  std::vector<PortRef> outputs;
  for (const NodeId po : src.primary_outputs()) {
    outputs.push_back(mapped_port(src.driver(PinRef(po, 0))));
  }
  return outputs;
}

}  // namespace

PairedDesign pair_designs(const Netlist& a, const Netlist& b) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "pairing requires equal primary input counts");
  PairedDesign pair;
  Netlist& n = pair.netlist;
  std::vector<PortRef> shared;
  for (const NodeId pi : a.primary_inputs()) {
    shared.push_back(PortRef(n.add_input(a.name(pi)), 0));
  }
  const auto outs_a = splice_design(n, a, shared, "a_");
  pair.a_latches = n.num_latches();
  const auto outs_b = splice_design(n, b, shared, "b_");
  pair.b_latches = n.num_latches() - pair.a_latches;
  pair.a_outputs = outs_a.size();
  pair.b_outputs = outs_b.size();
  for (std::size_t i = 0; i < outs_a.size(); ++i) {
    n.connect(outs_a[i], PinRef(n.add_output("a_o" + std::to_string(i)), 0));
  }
  for (std::size_t i = 0; i < outs_b.size(); ++i) {
    n.connect(outs_b[i], PinRef(n.add_output("b_o" + std::to_string(i)), 0));
  }
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return pair;
}

Miter build_miter(const Netlist& a, const Netlist& b) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "miter requires equal primary input counts");
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size() &&
                  !a.primary_outputs().empty(),
              "miter requires equal non-empty primary output counts");
  Miter miter;
  Netlist& n = miter.netlist;
  std::vector<PortRef> shared;
  for (const NodeId pi : a.primary_inputs()) {
    shared.push_back(PortRef(n.add_input(a.name(pi)), 0));
  }
  const auto outs_a = splice_design(n, a, shared, "a_");
  miter.a_latches = n.num_latches();
  const auto outs_b = splice_design(n, b, shared, "b_");
  miter.b_latches = n.num_latches() - miter.a_latches;

  const NodeId neq_po = n.add_output("neq");
  PortRef disagree;
  for (std::size_t i = 0; i < outs_a.size(); ++i) {
    const NodeId x = n.add_gate(CellKind::kXor, 2,
                                "diff_" + std::to_string(i));
    n.connect(outs_a[i], PinRef(x, 0));
    n.connect(outs_b[i], PinRef(x, 1));
    if (i == 0) {
      disagree = PortRef(x, 0);
    } else {
      const NodeId o = n.add_gate(CellKind::kOr, 2,
                                  "any_" + std::to_string(i));
      n.connect(disagree, PinRef(o, 0));
      n.connect(PortRef(x, 0), PinRef(o, 1));
      disagree = PortRef(o, 0);
    }
  }
  n.connect(disagree, PinRef(neq_po, 0));
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return miter;
}

}  // namespace rtv
