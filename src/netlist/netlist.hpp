#pragma once
// Gate-level synchronous netlist (paper Section 3.2).
//
// A netlist is an interconnection of library cells: combinational gates,
// fanout junctions (JUNC), generic table cells, and edge-triggered latches
// with no set/reset pins, all clocked by a single implicit clock. Every
// connection is point-to-point: an output *port* of one node drives an input
// *pin* of another. Multi-fanout is expressed either implicitly (a port with
// several sink pins — convenient while building) or explicitly through JUNC
// cells (the paper's normal form, required by the retiming move engine);
// Netlist::junctionize() converts the former into the latter.
//
// Nodes are identified by dense NodeId handles. Deletions tombstone the slot
// (is_dead); compacted() produces a dense renumbered copy.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/cell.hpp"
#include "ternary/truth_table.hpp"
#include "util/error.hpp"

namespace rtv {

/// Dense handle to a netlist node.
struct NodeId {
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  std::uint32_t value = kNpos;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != kNpos; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// An output port of a node (the driving side of a wire).
struct PortRef {
  NodeId node;
  std::uint32_t port = 0;

  constexpr PortRef() = default;
  constexpr PortRef(NodeId n, std::uint32_t p) : node(n), port(p) {}
  constexpr bool valid() const { return node.valid(); }
  constexpr auto operator<=>(const PortRef&) const = default;
};

/// An input pin of a node (the receiving side of a wire).
struct PinRef {
  NodeId node;
  std::uint32_t pin = 0;

  constexpr PinRef() = default;
  constexpr PinRef(NodeId n, std::uint32_t p) : node(n), pin(p) {}
  constexpr bool valid() const { return node.valid(); }
  constexpr auto operator<=>(const PinRef&) const = default;
};

/// Identifier of a TruthTable registered with the netlist.
struct TableId {
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  std::uint32_t value = kNpos;

  constexpr TableId() = default;
  constexpr explicit TableId(std::uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != kNpos; }
  constexpr auto operator<=>(const TableId&) const = default;
};

/// Machine-readable category of a structural defect found by
/// Netlist::structural_violations(). The analysis layer maps these onto
/// its RTV1xx diagnostic codes; keep the set stable.
enum class ViolationKind : std::uint8_t {
  kUnconnectedPin,      ///< input pin with no driver
  kMultiDrivenPin,      ///< pin listed as the sink of more than one port
  kBadArity,            ///< pin/port count illegal for the cell kind
  kBadTable,            ///< dangling table id or table/cell arity mismatch
  kBrokenCrossLink,     ///< fanin/fanout disagree or dead/out-of-range refs
  kIndexOutOfSync,      ///< PI/PO/latch index vector inconsistent
  kCombinationalCycle,  ///< latch-free feedback cycle
  kImplicitFanout,      ///< port with >1 sink (junction-normal mode only)
};

const char* to_string(ViolationKind kind);

/// One structural defect. `node` is the offending node (invalid for
/// netlist-wide problems such as index desync); `message` is the human
/// description check_valid() used to throw.
struct StructuralViolation {
  ViolationKind kind = ViolationKind::kUnconnectedPin;
  NodeId node;
  std::string message;
};

/// One netlist node.
struct Node {
  CellKind kind = CellKind::kBuf;
  std::string name;
  /// Per input pin: the driving output port (invalid while unconnected).
  std::vector<PortRef> fanin;
  /// Per output port: the sink pins (size > 1 means implicit fanout).
  std::vector<std::vector<PinRef>> fanout;
  /// Function definition for kTable cells.
  TableId table;
  /// Tombstone flag (slot retained so NodeIds stay stable).
  bool dead = false;

  unsigned num_pins() const { return static_cast<unsigned>(fanin.size()); }
  unsigned num_ports() const { return static_cast<unsigned>(fanout.size()); }
};

class Netlist {
 public:
  Netlist() = default;

  // ---- construction --------------------------------------------------------

  NodeId add_input(std::string name = "");
  NodeId add_output(std::string name = "");
  NodeId add_const(bool value, std::string name = "");
  /// Adds a gate of kind kBuf/kNot/kMux (fixed arity, pass 0 to use it) or a
  /// variadic gate kAnd..kXnor with the given fanin (>= 1).
  NodeId add_gate(CellKind kind, unsigned fanin = 0, std::string name = "");
  NodeId add_junc(unsigned width, std::string name = "");
  NodeId add_latch(std::string name = "");
  TableId add_table(TruthTable table);
  NodeId add_table_cell(TableId table, std::string name = "");

  /// Connects an output port to an input pin. The pin must be unconnected.
  void connect(PortRef from, PinRef to);
  /// Shorthand: connect port 0 of `from_node` to pin `pin` of `to_node`.
  void connect(NodeId from_node, NodeId to_node, std::uint32_t pin = 0);
  /// Detaches a connected pin from its driver.
  void disconnect(PinRef to);

  // ---- structural edits (used by the retiming move engine) -----------------

  /// Inserts a fresh 1-pin/1-port node (kLatch or kBuf) on the wire
  /// driver -> sink and returns it.
  NodeId insert_on_wire(PortRef driver, PinRef sink, CellKind kind,
                        std::string name = "");
  /// Removes a 1-pin/1-port node, reconnecting its driver to its sinks.
  void bypass_and_remove(NodeId node);

  // ---- queries --------------------------------------------------------------

  /// Total slots including tombstones; valid NodeId values are < num_slots().
  std::size_t num_slots() const { return nodes_.size(); }
  bool is_dead(NodeId id) const { return node_ref(id).dead; }
  const Node& node(NodeId id) const { return node_ref(id); }
  CellKind kind(NodeId id) const { return node_ref(id).kind; }
  unsigned num_pins(NodeId id) const { return node_ref(id).num_pins(); }
  unsigned num_ports(NodeId id) const { return node_ref(id).num_ports(); }
  PortRef driver(PinRef pin) const;
  const std::vector<PinRef>& sinks(PortRef port) const;
  /// The unique sink of a port in junction-normal form; throws if fanout != 1.
  PinRef sole_sink(PortRef port) const;

  /// Primary inputs / outputs / latches in creation order. These orders
  /// define the layout of simulation input, output, and state vectors.
  const std::vector<NodeId>& primary_inputs() const { return inputs_; }
  const std::vector<NodeId>& primary_outputs() const { return outputs_; }
  const std::vector<NodeId>& latches() const { return latches_; }

  std::size_t num_live_nodes() const;
  std::size_t num_latches() const { return latches_.size(); }
  /// Number of live combinational cells (gates + junctions + tables + consts).
  std::size_t num_gates() const;

  std::vector<NodeId> live_nodes() const;

  const TruthTable& table(TableId id) const;
  std::size_t num_tables() const { return tables_.size(); }

  /// The Boolean function of a combinational node as a TruthTable.
  /// Throws InvalidArgument for inputs/outputs/latches.
  TruthTable cell_function(NodeId id) const;

  /// The paper's justifiability predicate for a combinational node:
  /// is the cell's output function surjective onto 2^m? Constants and
  /// JUNC(k>=2) are non-justifiable; all non-constant single-output gates
  /// are justifiable.
  bool is_justifiable(NodeId id) const;

  /// Name accessor; empty if unnamed.
  const std::string& name(NodeId id) const { return node_ref(id).name; }
  void set_name(NodeId id, std::string name);
  /// Linear search by name over live nodes (testing convenience).
  NodeId find_by_name(const std::string& name) const;

  // ---- passes (passes.cpp) --------------------------------------------------

  /// Replaces every implicit multi-fanout port with an explicit JUNC cell so
  /// that each output of each cell drives exactly one pin (Section 3.2).
  /// Ports of JUNC cells themselves are never re-junctionized. Returns the
  /// number of junctions inserted.
  std::size_t junctionize();

  /// True iff no port (other than a port already on a JUNC being its own
  /// fanout tree) has more than one sink pin.
  bool is_junction_normal() const;

  /// Returns a dense copy with tombstones removed. If `old_to_new` is given,
  /// it is filled with the id remapping (invalid for dead slots).
  Netlist compacted(std::vector<NodeId>* old_to_new = nullptr) const;

  /// Removes every node that cannot influence any primary output (backward
  /// closure from the POs through gates and latches). Primary inputs are
  /// kept even when unobservable (the interface is part of the contract).
  /// Returns the number of nodes removed.
  std::size_t sweep_unobservable();

  /// Constant propagation to a fixpoint: evaluates combinational cells
  /// whose inputs are all constants, applies dominant-value shortcuts
  /// (0 into AND, 1 into OR, ...), forwards buffers and constant-selected
  /// muxes, and then re-junctionizes. Does not touch latches. Returns the
  /// number of cells simplified away.
  std::size_t propagate_constants();

  /// Removes dangling structure left behind by other passes: nodes none of
  /// whose ports drive anything (recursively), and junctions with unused
  /// branches (shrunk, or dissolved when one branch remains). Primary
  /// inputs are kept. Restores the every-port-has-a-sink invariant the
  /// retiming move engine relies on. Returns the number of nodes removed
  /// or rebuilt.
  std::size_t trim_dangling();

  /// Structural validation: every pin connected, no multi-driven pins,
  /// fanout/fanin cross-linked consistently, arities legal, index vectors in
  /// sync, every cycle crosses a latch. Unlike check_valid this accumulates
  /// every violation instead of stopping at the first, so callers (the lint
  /// pass framework in src/analysis) can report all problems in one run.
  std::vector<StructuralViolation> structural_violations(
      bool require_junction_normal = false) const;

  /// Throwing wrapper around structural_violations(): raises InvalidArgument
  /// describing the first problem found; no-op on a sound netlist.
  void check_valid(bool require_junction_normal = false) const;

  /// True iff deleting all latches leaves an acyclic combinational graph —
  /// i.e. every cycle contains at least one latch (the synchrony condition).
  bool every_cycle_has_latch() const;

  /// True iff every combinational cell maps all-X inputs to all-X outputs
  /// (the Section 5 assumption; constants violate it).
  bool all_cells_preserve_all_x() const;

  /// One-line summary, e.g. "netlist: 3 PI, 2 PO, 4 latches, 17 gates".
  std::string summary() const;

 private:
  friend std::vector<NodeId> combinational_topo_order(const Netlist&);

  /// A live combinational node on some latch-free cycle, or invalid if
  /// every cycle crosses a latch.
  NodeId combinational_cycle_witness() const;

  Node& node_ref(NodeId id);
  const Node& node_ref(NodeId id) const;
  NodeId new_node(CellKind kind, unsigned pins, unsigned ports,
                  std::string name);
  std::string fresh_name(const char* prefix);

  std::vector<Node> nodes_;
  std::vector<TruthTable> tables_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> latches_;
  std::uint64_t name_counter_ = 0;
};

/// Topological order of the live nodes for one-cycle evaluation: inputs,
/// constants and latches first (as combinational sources), then every
/// combinational node after all of its drivers, then primary outputs.
/// Throws InvalidArgument if a combinational cycle exists.
std::vector<NodeId> combinational_topo_order(const Netlist& netlist);

/// The latch-free feedback cycles of the netlist, reported as the strongly
/// connected components of the combinational subgraph (edges through
/// latches and primary inputs are cut, so every SCC here violates the
/// synchrony condition). Only offending SCCs are returned: components of
/// two or more cells, or a single cell driving itself. Each component is
/// sorted by NodeId and the list is ordered by smallest member, so output
/// is deterministic. Tolerates structurally broken netlists (dangling or
/// out-of-range references are skipped), which is what makes it usable
/// from lint before validity is established.
std::vector<std::vector<NodeId>> combinational_sccs(const Netlist& netlist);

/// Per-slot observability: mask[id.value] is true iff `id` can influence
/// some primary output through a chain of fanin edges (the backward
/// closure that sweep_unobservable() deletes against). Dead slots are
/// false; tolerates structurally broken netlists.
std::vector<bool> observable_mask(const Netlist& netlist);

}  // namespace rtv
