#include "netlist/netlist.hpp"

namespace rtv {

std::vector<NodeId> combinational_topo_order(const Netlist& netlist) {
  const std::size_t slots = netlist.num_slots();
  std::vector<NodeId> order;
  order.reserve(slots);

  // Sources: primary inputs and latches provide cycle-start values.
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id)) continue;
    const CellKind k = netlist.kind(id);
    if (k == CellKind::kInput || k == CellKind::kLatch) order.push_back(id);
  }

  // Kahn's algorithm over combinational nodes; only drivers that are
  // themselves combinational contribute to the in-degree (latch and PI
  // values are available before combinational evaluation starts).
  std::vector<std::uint32_t> indegree(slots, 0);
  std::size_t comb_total = 0;
  std::vector<NodeId> ready;
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id) || !is_combinational(netlist.kind(id))) continue;
    ++comb_total;
    std::uint32_t deg = 0;
    for (const PortRef& drv : netlist.node(id).fanin) {
      RTV_REQUIRE(drv.valid(), "topo order requires fully connected pins");
      if (is_combinational(netlist.kind(drv.node))) ++deg;
    }
    indegree[i] = deg;
    if (deg == 0) ready.push_back(id);
  }

  std::size_t comb_emitted = 0;
  while (!ready.empty()) {
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    ++comb_emitted;
    for (const auto& port_sinks : netlist.node(u).fanout) {
      for (const PinRef& s : port_sinks) {
        if (!is_combinational(netlist.kind(s.node))) continue;
        if (--indegree[s.node.value] == 0) ready.push_back(s.node);
      }
    }
  }
  if (comb_emitted != comb_total) {
    throw InvalidArgument(
        "combinational_topo_order: netlist contains a combinational cycle");
  }

  for (NodeId id : netlist.primary_outputs()) order.push_back(id);
  return order;
}

}  // namespace rtv
