#include <algorithm>

#include "netlist/netlist.hpp"

namespace rtv {

std::vector<NodeId> combinational_topo_order(const Netlist& netlist) {
  const std::size_t slots = netlist.num_slots();
  std::vector<NodeId> order;
  order.reserve(slots);

  // Sources: primary inputs and latches provide cycle-start values.
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id)) continue;
    const CellKind k = netlist.kind(id);
    if (k == CellKind::kInput || k == CellKind::kLatch) order.push_back(id);
  }

  // Kahn's algorithm over combinational nodes; only drivers that are
  // themselves combinational contribute to the in-degree (latch and PI
  // values are available before combinational evaluation starts).
  std::vector<std::uint32_t> indegree(slots, 0);
  std::size_t comb_total = 0;
  std::vector<NodeId> ready;
  for (std::uint32_t i = 0; i < slots; ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id) || !is_combinational(netlist.kind(id))) continue;
    ++comb_total;
    std::uint32_t deg = 0;
    for (const PortRef& drv : netlist.node(id).fanin) {
      RTV_REQUIRE(drv.valid(), "topo order requires fully connected pins");
      if (is_combinational(netlist.kind(drv.node))) ++deg;
    }
    indegree[i] = deg;
    if (deg == 0) ready.push_back(id);
  }

  std::size_t comb_emitted = 0;
  while (!ready.empty()) {
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    ++comb_emitted;
    for (const auto& port_sinks : netlist.node(u).fanout) {
      for (const PinRef& s : port_sinks) {
        if (!is_combinational(netlist.kind(s.node))) continue;
        if (--indegree[s.node.value] == 0) ready.push_back(s.node);
      }
    }
  }
  if (comb_emitted != comb_total) {
    throw InvalidArgument(
        "combinational_topo_order: netlist contains a combinational cycle");
  }

  for (NodeId id : netlist.primary_outputs()) order.push_back(id);
  return order;
}

namespace {

/// True for a live slot holding a combinational cell — the only nodes that
/// participate in combinational-cycle analysis.
bool comb_live(const Netlist& n, NodeId id) {
  return id.valid() && id.value < n.num_slots() && !n.is_dead(id) &&
         is_combinational(n.kind(id));
}

}  // namespace

std::vector<std::vector<NodeId>> combinational_sccs(const Netlist& netlist) {
  const std::size_t slots = netlist.num_slots();

  // Iterative Tarjan over the combinational subgraph. Edges follow fanout
  // (driver -> sink) between live combinational cells only; anything that
  // crosses a latch, PI, or PO is cut, so a non-trivial SCC is exactly a
  // latch-free feedback cycle.
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(slots, kUnvisited);
  std::vector<std::uint32_t> lowlink(slots, 0);
  std::vector<bool> on_stack(slots, false);
  std::vector<std::uint32_t> scc_stack;
  std::uint32_t next_index = 0;
  std::vector<std::vector<NodeId>> offending;

  struct Frame {
    std::uint32_t node;
    std::uint32_t port = 0;
    std::uint32_t sink = 0;
  };
  std::vector<Frame> dfs;

  for (std::uint32_t root = 0; root < slots; ++root) {
    if (index[root] != kUnvisited || !comb_live(netlist, NodeId(root))) {
      continue;
    }
    dfs.push_back({root});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const Node& node = netlist.node(NodeId(f.node));
      bool descended = false;
      while (f.port < node.fanout.size()) {
        if (f.sink >= node.fanout[f.port].size()) {
          ++f.port;
          f.sink = 0;
          continue;
        }
        const NodeId succ = node.fanout[f.port][f.sink++].node;
        if (!comb_live(netlist, succ)) continue;
        if (index[succ.value] == kUnvisited) {
          dfs.push_back({succ.value});
          index[succ.value] = lowlink[succ.value] = next_index++;
          scc_stack.push_back(succ.value);
          on_stack[succ.value] = true;
          descended = true;
          break;
        }
        if (on_stack[succ.value]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[succ.value]);
        }
      }
      if (descended) continue;

      // f.node is fully expanded: pop it, fold its lowlink into the parent,
      // and emit the component if f.node is its root.
      const std::uint32_t v = f.node;
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] =
            std::min(lowlink[dfs.back().node], lowlink[v]);
      }
      if (lowlink[v] != index[v]) continue;
      std::vector<NodeId> component;
      while (true) {
        const std::uint32_t w = scc_stack.back();
        scc_stack.pop_back();
        on_stack[w] = false;
        component.push_back(NodeId(w));
        if (w == v) break;
      }
      bool cyclic = component.size() > 1;
      if (!cyclic) {
        for (const auto& port_sinks : netlist.node(component[0]).fanout) {
          for (const PinRef& s : port_sinks) {
            if (s.node == component[0]) cyclic = true;
          }
        }
      }
      if (!cyclic) continue;
      std::sort(component.begin(), component.end());
      offending.push_back(std::move(component));
    }
  }

  std::sort(offending.begin(), offending.end(),
            [](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
              return a.front() < b.front();
            });
  return offending;
}

std::vector<bool> observable_mask(const Netlist& netlist) {
  const std::size_t slots = netlist.num_slots();
  std::vector<bool> observable(slots, false);
  std::vector<std::uint32_t> stack;
  for (const NodeId po : netlist.primary_outputs()) {
    if (!po.valid() || po.value >= slots || netlist.is_dead(po)) continue;
    if (observable[po.value]) continue;
    observable[po.value] = true;
    stack.push_back(po.value);
  }
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    for (std::uint32_t pin = 0; pin < netlist.num_pins(NodeId(v)); ++pin) {
      const PortRef drv = netlist.driver(PinRef(NodeId(v), pin));
      if (!drv.valid() || drv.node.value >= slots) continue;
      if (!observable[drv.node.value]) {
        observable[drv.node.value] = true;
        stack.push_back(drv.node.value);
      }
    }
  }
  return observable;
}

}  // namespace rtv
