#pragma once
// Sequential miter construction — the product-machine tool behind the
// Theorem 4.6 proof sketch ("Create a circuit T = (G || F) ... each pair of
// outputs fed to an XNOR gate"). Two designs with identical interfaces
// share their primary inputs; every output pair feeds an XOR, and the OR
// of all XORs is the single miter output: 1 whenever the designs disagree.

#include "netlist/netlist.hpp"

namespace rtv {

struct Miter {
  Netlist netlist;
  /// Latch layout: first `a_latches` entries of netlist.latches() belong to
  /// design A, the rest to design B — pack joint states accordingly.
  std::size_t a_latches = 0;
  std::size_t b_latches = 0;
};

/// Builds the miter of two interface-compatible designs (same PI and PO
/// counts). The result has A's PI names and a single PO "neq".
Miter build_miter(const Netlist& a, const Netlist& b);

/// The two designs side by side sharing primary inputs, with BOTH output
/// sets exposed (A's POs first, then B's) — the product machine used by
/// symbolic state-implication checking (bdd/equivalence.hpp).
struct PairedDesign {
  Netlist netlist;
  std::size_t a_latches = 0;
  std::size_t b_latches = 0;
  std::size_t a_outputs = 0;
  std::size_t b_outputs = 0;
};
PairedDesign pair_designs(const Netlist& a, const Netlist& b);

}  // namespace rtv
