// E9 — Theorem 5.1 / Corollary 5.3 (the paper's main result): conservative
// three-valued simulation cannot distinguish a retimed circuit from the
// original. Sweep: random circuits x random legal retimings, CLS
// equivalence checked exhaustively (pair reachability) where feasible.

#include <cstdio>

#include "bench_util.hpp"
#include "core/cls_equiv.hpp"
#include "core/safety.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "sim/cls_sim.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

std::vector<int> random_legal_lag(const RetimeGraph& g, Rng& rng,
                                  int attempts) {
  std::vector<int> lag(g.num_vertices(), 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<int> probe = lag;
    const std::uint32_t v =
        2 + static_cast<std::uint32_t>(rng.below(g.num_vertices() - 2));
    probe[v] += rng.coin() ? 1 : -1;
    if (g.legal_retiming(probe)) lag = probe;
  }
  return lag;
}

}  // namespace

void report() {
  bench::heading("E9 / Thm 5.1, Cor 5.3",
                 "CLS output invariance under retiming");
  // The paper pair first.
  {
    const auto r =
        check_cls_equivalence(figure1_original(), figure1_retimed());
    std::printf("figure-1 pair: %s\n\n", r.summary().c_str());
  }

  std::printf("%-14s %-8s %-12s %-12s %-14s\n", "retiming", "trials",
              "equivalent", "exhaustive", "state pairs");
  Rng rng(31415);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 14;
  opt.num_latches = 4;
  opt.latch_after_gate_probability = 0.3;

  for (const char* policy : {"random walk", "min-area", "min-period"}) {
    int trials = 0, equivalent = 0, exhaustive = 0;
    std::size_t pairs = 0;
    for (int t = 0; t < 12; ++t) {
      const Netlist n = random_netlist(opt, rng);
      const RetimeGraph g = RetimeGraph::from_netlist(n);
      std::vector<int> lag;
      if (policy[0] == 'r') {
        lag = random_legal_lag(g, rng, 30);
      } else if (policy[4] == 'a') {
        lag = min_area_retime(g).lag;
      } else {
        lag = min_period_retime_opt(g).lag;
      }
      SequencedRetiming seq;
      analyze_lag_retiming(n, g, lag, &seq);
      const auto r = check_cls_equivalence(n, seq.retimed);
      ++trials;
      equivalent += r.equivalent;
      exhaustive += r.exhaustive;
      pairs += r.pairs_explored;
    }
    std::printf("%-14s %-8d %3d/%-8d %3d/%-8d %-14zu\n", policy, trials,
                equivalent, trials, exhaustive, trials, pairs);
  }
  std::printf("\n(paper: equivalent must be 100%% in every row)\n");
}

namespace {

void BM_ClsEquivalenceExhaustive(benchmark::State& state) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_cls_equivalence(d, c));
  }
}
BENCHMARK(BM_ClsEquivalenceExhaustive);

void BM_ClsSimulatorStep(benchmark::State& state) {
  Rng rng(5);
  RandomCircuitOptions opt;
  opt.num_gates = static_cast<unsigned>(state.range(0));
  opt.num_latches = opt.num_gates / 4;
  opt.num_inputs = 4;
  const Netlist n = random_netlist(opt, rng);
  ClsSimulator sim(n);
  const Trits in(n.primary_inputs().size(), Trit::kX);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.counters["gates"] = static_cast<double>(n.num_gates());
}
BENCHMARK(BM_ClsSimulatorStep)->Arg(64)->Arg(512)->Arg(4096);

void BM_ValidateRetimingFull(benchmark::State& state) {
  Rng rng(17);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_gates = 14;
  opt.num_latches = 4;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const auto lag = min_area_retime(g).lag;
  SequencedRetiming seq;
  analyze_lag_retiming(n, g, lag, &seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_cls_equivalence(n, seq.retimed));
  }
}
BENCHMARK(BM_ValidateRetimingFull);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
