// Lint scaling — the ternary dataflow fixpoint on 10^4..10^5-gate random
// netlists. The header comment of src/analysis/dataflow.hpp promises
// near-linear convergence: monotone transfer functions over a height-3
// lattice mean every port can grow at most 3 times, so worklist effort is
// bounded by fanout-weighted updates, not by iteration-to-quiescence.
//
// The report asserts the contract before writing anything: per size,
// updates <= 3 * ports (the lattice-height bound, exact and deterministic),
// and end-to-end the largest/smallest lint time ratio must stay within
// kLinearSlack times the port-count ratio — a quadratic engine would blow
// that bound by an order of magnitude at the 10x size spread measured
// here. The machine-readable BENCH_lint.json (path overridable via
// RTV_BENCH_JSON) records per-size timings and convergence statistics; the
// binary re-reads and schema-checks the file, exiting non-zero on any
// violation so the scaling contract cannot silently bit-rot.
// RTV_BENCH_SMOKE=1 shrinks the sizes (same 10x spread) so CI can run the
// report in seconds.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "bench_util.hpp"
#include "gen/random_circuits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

/// Largest-over-smallest lint time may exceed the port-count ratio by at
/// most this factor. Linear engines sit near 1; a quadratic one would show
/// ~10x the port ratio at the 10x size spread and fail loudly.
constexpr double kLinearSlack = 4.0;

/// Additive damping (ms) so sub-millisecond smoke timings cannot produce a
/// flaky ratio; irrelevant against any genuine super-linear blowup.
constexpr double kNoiseFloorMs = 1.0;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct Row {
  unsigned gates = 0;
  std::size_t ports = 0;
  double dataflow_ms = 0.0;   ///< run_dataflow alone
  double lint_ms = 0.0;       ///< full run_lint (structural + semantic)
  std::size_t iterations = 0;
  std::size_t updates = 0;
  std::size_t table_fallbacks = 0;
  bool updates_bound_ok = false;  ///< updates <= 3 * ports
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Netlist workload(unsigned gates, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 16;
  opt.num_outputs = 8;
  opt.num_gates = gates;
  opt.num_latches = gates / 8;
  opt.table_probability = 0.05;
  opt.latch_after_gate_probability = 0.05;
  return random_netlist(opt, rng);
}

Row measure(unsigned gates) {
  Row row;
  row.gates = gates;
  const Netlist n = workload(gates, 0xD5);

  const auto t0 = std::chrono::steady_clock::now();
  const DataflowResult df = run_dataflow(n);
  row.dataflow_ms = ms_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const LintResult lint = run_lint(n);
  row.lint_ms = ms_since(t1);

  const DataflowStats& stats =
      lint.dataflow_stats.has_value() ? *lint.dataflow_stats : df.stats();
  row.ports = stats.num_ports;
  row.iterations = stats.iterations;
  row.updates = stats.updates;
  row.table_fallbacks = stats.table_fallbacks;
  row.updates_bound_ok = row.updates <= 3 * row.ports;
  return row;
}

std::vector<Row> run_report(bool smoke) {
  const std::vector<unsigned> sizes =
      smoke ? std::vector<unsigned>{1'000, 3'000, 10'000}
            : std::vector<unsigned>{10'000, 30'000, 100'000};
  std::vector<Row> rows;
  rows.reserve(sizes.size());
  for (unsigned gates : sizes) rows.push_back(measure(gates));
  return rows;
}

/// time(L)/time(S) <= kLinearSlack * ports(L)/ports(S), noise-damped.
bool near_linear(const std::vector<Row>& rows, double* time_ratio,
                 double* port_ratio) {
  const Row& small = rows.front();
  const Row& large = rows.back();
  *time_ratio = (large.lint_ms + kNoiseFloorMs) /
                (small.lint_ms + kNoiseFloorMs);
  *port_ratio = static_cast<double>(large.ports) /
                static_cast<double>(small.ports);
  return *time_ratio <= kLinearSlack * *port_ratio;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_lint.json";
}

std::string render_bench_json(const std::vector<Row>& rows, double time_ratio,
                              double port_ratio, bool linear) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"lint_scale\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"linear_slack\": " << kLinearSlack << ",\n";
  os << "  \"time_ratio\": " << time_ratio << ",\n";
  os << "  \"port_ratio\": " << port_ratio << ",\n";
  os << "  \"near_linear\": " << (linear ? "true" : "false") << ",\n";
  os << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\n";
    os << "      \"gates\": " << r.gates << ",\n";
    os << "      \"ports\": " << r.ports << ",\n";
    os << "      \"dataflow_ms\": " << r.dataflow_ms << ",\n";
    os << "      \"lint_ms\": " << r.lint_ms << ",\n";
    os << "      \"iterations\": " << r.iterations << ",\n";
    os << "      \"updates\": " << r.updates << ",\n";
    os << "      \"table_fallbacks\": " << r.table_fallbacks << ",\n";
    os << "      \"updates_bound_ok\": "
       << (r.updates_bound_ok ? "true" : "false") << "\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys,
/// balanced nesting, at least two sizes, the lattice bound true in every
/// row, and the scaling flag true.
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"", "\"linear_slack\"",
        "\"time_ratio\"", "\"port_ratio\"", "\"near_linear\"", "\"sizes\"",
        "\"gates\"", "\"ports\"", "\"dataflow_ms\"", "\"lint_ms\"",
        "\"iterations\"", "\"updates\"", "\"table_fallbacks\"",
        "\"updates_bound_ok\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  std::size_t pos = 0;
  unsigned entries = 0;
  while ((pos = text.find("\"updates_bound_ok\":", pos)) !=
         std::string::npos) {
    pos += 19;
    if (text.compare(pos, 5, " true") != 0) {
      return "a size broke the 3-updates-per-port lattice bound";
    }
    ++entries;
  }
  if (entries < 2) return "fewer than two sizes measured";
  pos = text.find("\"near_linear\":");
  if (pos == std::string::npos || text.compare(pos + 14, 5, " true") != 0) {
    return "lint time scaled super-linearly in netlist size";
  }
  return "";
}

void emit_bench_json(const std::vector<Row>& rows, double time_ratio,
                     double port_ratio, bool linear) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows, time_ratio, port_ratio, linear);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

void bm_dataflow(::benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 0xD5);
  for (auto _ : state) {
    const DataflowResult df = run_dataflow(n);
    ::benchmark::DoNotOptimize(df.stats().updates);
  }
}
BENCHMARK(bm_dataflow)->Arg(10'000)->Arg(100'000)
    ->Unit(::benchmark::kMillisecond);

void bm_lint(::benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 0xD5);
  for (auto _ : state) {
    const LintResult lint = run_lint(n);
    ::benchmark::DoNotOptimize(lint.diagnostics.size());
  }
}
BENCHMARK(bm_lint)->Arg(10'000)->Arg(100'000)
    ->Unit(::benchmark::kMillisecond);

}  // namespace

void report() {
  bench::heading("lint scaling / ternary dataflow fixpoint",
                 "run_dataflow and full run_lint on 10^4..10^5-gate random "
                 "netlists; updates <= 3 * ports and near-linear time");
  const std::vector<Row> rows = run_report(smoke_mode());

  std::printf("%-10s %-10s %-12s %-12s %-12s %-10s %-10s %-6s\n", "gates",
              "ports", "dataflow ms", "lint ms", "iterations", "updates",
              "upd/port", "bound");
  for (const Row& r : rows) {
    std::printf("%-10u %-10zu %-12.2f %-12.2f %-12zu %-10zu %-10.3f %-6s\n",
                r.gates, r.ports, r.dataflow_ms, r.lint_ms, r.iterations,
                r.updates,
                static_cast<double>(r.updates) /
                    static_cast<double>(r.ports),
                r.updates_bound_ok ? "ok" : "NO");
    if (!r.updates_bound_ok) {
      std::fprintf(stderr,
                   "error: %u gates: %zu updates over %zu ports breaks the "
                   "3-per-port lattice bound\n",
                   r.gates, r.updates, r.ports);
      std::exit(1);
    }
  }

  double time_ratio = 0.0, port_ratio = 0.0;
  const bool linear = near_linear(rows, &time_ratio, &port_ratio);
  std::printf("largest/smallest: lint time %.2fx over %.2fx the ports "
              "(slack %.1fx) — %s\n",
              time_ratio, port_ratio, kLinearSlack,
              linear ? "near-linear" : "SUPER-LINEAR");
  if (!linear) {
    std::fprintf(stderr,
                 "error: lint time ratio %.2f exceeds %.1f * port ratio "
                 "%.2f — scaling is super-linear\n",
                 time_ratio, kLinearSlack, port_ratio);
    std::exit(1);
  }
  emit_bench_json(rows, time_ratio, port_ratio, linear);
}

}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
