// E8 — Theorem 4.6: test sets for D remain test sets for C^k. Fault
// coverage of a fixed random test set on pipelined datapaths, before
// retiming, after retiming (same tests), and after retiming with k warm-up
// cycles — the middle column may drop, the right column may not.

#include <cstdio>

#include "bench_util.hpp"
#include "core/safety.hpp"
#include "core/test_preserve.hpp"
#include "fault/fault_sim.hpp"
#include "fault/tpg.hpp"
#include "gen/datapath.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

struct CoverageRow {
  std::size_t faults = 0;
  std::size_t detected_original = 0;
  std::size_t detected_retimed = 0;
  std::size_t detected_delayed = 0;
  bool theorem_holds = true;
  unsigned k = 0;
};

CoverageRow run_case(const Netlist& original, std::uint64_t seed) {
  Rng rng(seed);
  const RetimeGraph g = RetimeGraph::from_netlist(original);
  const MinAreaResult area = min_area_retime(g);
  SequencedRetiming seq;
  analyze_lag_retiming(original, g, area.lag, &seq);

  CoverageRow row;
  row.k = static_cast<unsigned>(seq.stats.forward_moves);

  std::vector<BitsSeq> tests;
  for (int t = 0; t < 6; ++t) {
    BitsSeq test;
    Bits in(original.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    for (int step = 0; step < 8; ++step) test.push_back(in);
    tests.push_back(test);
  }

  const auto faults = collapse_faults(original);
  for (std::size_t i = 0; i < faults.size(); i += 3) {
    const Fault& f = faults[i];
    if (!is_combinational(original.kind(f.site.node))) continue;
    if (seq.retimed.sinks(f.site).empty()) continue;
    bool in_d = false, in_c = false, in_ck = false;
    for (const auto& test : tests) {
      if (!in_d && test_detects(original, f, test)) in_d = true;
      if (!in_c && test_detects(seq.retimed, f, test)) in_c = true;
      if (!in_ck && test_detects_delayed(seq.retimed, f, test, row.k)) {
        in_ck = true;
      }
      if (in_d && in_c && in_ck) break;
    }
    ++row.faults;
    row.detected_original += in_d;
    row.detected_retimed += in_c;
    row.detected_delayed += in_ck;
    if (in_d && !in_ck) row.theorem_holds = false;
  }
  return row;
}

}  // namespace

void report() {
  bench::heading("E8 / Thm 4.6",
                 "fault coverage: D vs retimed C vs delayed C^k");
  std::printf("%-22s %-8s %-4s %-10s %-12s %-12s %-10s\n", "workload",
              "faults", "k", "cov(D)", "cov(C)", "cov(C^k)", "Thm 4.6");
  const struct {
    const char* name;
    Netlist netlist;
  } cases[] = {
      {"adder 2b x 2 stages", pipelined_adder(2, 2)},
      {"adder 3b x 2 stages", pipelined_adder(3, 2)},
      {"adder 4b x 3 stages", pipelined_adder(4, 3)},
  };
  for (const auto& c : cases) {
    const CoverageRow row = run_case(c.netlist, 99);
    std::printf("%-22s %-8zu %-4u %3zu/%-6zu %3zu/%-8zu %3zu/%-8zu %-10s\n",
                c.name, row.faults, row.k, row.detected_original, row.faults,
                row.detected_retimed, row.faults, row.detected_delayed,
                row.faults, row.theorem_holds ? "holds" : "VIOLATED");
  }
  std::printf("\n(paper: cov(C) may drop below cov(D); cov(C^k) >= cov(D))\n");

  // The same story with a *generated* test set (random-search ATPG with
  // fault dropping) instead of fixed random tests.
  {
    const Netlist d = pipelined_adder(3, 2);
    const TestSet on_d = generate_tests(d);
    const RetimeGraph g = RetimeGraph::from_netlist(d);
    SequencedRetiming seq;
    analyze_lag_retiming(d, g, min_area_retime(g).lag, &seq);
    const unsigned k = static_cast<unsigned>(seq.stats.forward_moves);
    const TestSet on_c = grade_tests(seq.retimed, on_d.faults, on_d.tests, 0);
    const TestSet on_ck = grade_tests(seq.retimed, on_d.faults, on_d.tests, k);
    // Thm 4.6 speaks about nets that exist in both designs; faults on
    // latch output nets consumed by the retiming have no identity in C.
    std::size_t floor_common = 0, common = 0;
    for (std::size_t i = 0; i < on_d.faults.size(); ++i) {
      const Fault& f = on_d.faults[i];
      const bool alive = !seq.retimed.is_dead(f.site.node) &&
                         !seq.retimed.sinks(f.site).empty();
      if (!alive) continue;
      ++common;
      floor_common += on_d.detected[i];
    }
    std::printf("\nATPG on adder 3b x 2 stages (min-area retiming, k = %u):\n",
                k);
    std::printf("  generated for D:  %s\n", on_d.summary().c_str());
    std::printf("  graded on C:      %s\n", on_c.summary().c_str());
    std::printf("  graded on C^k:    %s\n", on_ck.summary().c_str());
    std::printf("  common nets: %zu, Thm 4.6 floor there: %zu, met: %s\n",
                common, floor_common,
                on_ck.num_detected >= floor_common ? "yes" : "NO");
  }
}

namespace {

void BM_CoverageCase(benchmark::State& state) {
  const Netlist n = pipelined_adder(2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_case(n, 5));
  }
}
BENCHMARK(BM_CoverageCase);

void BM_ExactFaultSim(benchmark::State& state) {
  const Netlist n = pipelined_adder(3, 2);
  const auto faults = collapse_faults(n);
  Rng rng(1);
  BitsSeq test;
  Bits in(n.primary_inputs().size());
  for (auto& v : in) v = rng.coin();
  for (int t = 0; t < 8; ++t) test.push_back(in);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(test_detects(n, faults[i % faults.size()], test));
    ++i;
  }
}
BENCHMARK(BM_ExactFaultSim);

void BM_SampledFaultSim(benchmark::State& state) {
  const Netlist n = pipelined_adder(4, 3);
  const auto faults = collapse_faults(n);
  Rng rng(1);
  BitsSeq test;
  Bits in(n.primary_inputs().size());
  for (auto& v : in) v = rng.coin();
  for (int t = 0; t < 8; ++t) test.push_back(in);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampled_test_detects(
        n, faults[i % faults.size()], test, 256, rng));
    ++i;
  }
}
BENCHMARK(BM_SampledFaultSim);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
