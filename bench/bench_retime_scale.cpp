// E10 — substrate scale (the [SR94] context the paper cites: retiming at
// tens of thousands of gates). Min-period and min-area retiming on
// generated pipelined multipliers and random netlists of growing size.

#include <chrono>
#include <cstdlib>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void scale_row(const char* name, const Netlist& n) {
  const auto t0 = std::chrono::steady_clock::now();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const double t_graph = seconds_since(t0);

  const auto t1 = std::chrono::steady_clock::now();
  const RetimingSolution period = min_period_retime_feas(g);
  const double t_period = seconds_since(t1);

  const auto t2 = std::chrono::steady_clock::now();
  const MinAreaResult area = min_area_retime(g);
  const double t_area = seconds_since(t2);

  std::printf("%-22s %8zu %8zu %6d->%-6d %6lld->%-6lld %8.3f %8.3f %8.3f\n",
              name, n.num_gates(), n.num_latches(), g.clock_period(),
              period.period, static_cast<long long>(area.registers_before),
              static_cast<long long>(area.registers_after), t_graph, t_period,
              t_area);
}

Netlist big_random(unsigned gates, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 16;
  opt.num_outputs = 16;
  opt.num_gates = gates;
  opt.num_latches = gates / 8;
  opt.latch_after_gate_probability = 0.25;
  return random_netlist(opt, rng);
}

}  // namespace

void report() {
  bench::heading("E10 / [SR94] scale",
                 "min-period (FEAS-style) and min-area retiming vs size");
  std::printf("%-22s %8s %8s %-14s %-14s %8s %8s %8s\n", "workload", "gates",
              "latches", "period", "registers", "t_graph", "t_per", "t_area");
  scale_row("mult 8b, 2 rows/stg", pipelined_multiplier(8, 2));
  scale_row("mult 16b, 4 rows/stg", pipelined_multiplier(16, 4));
  scale_row("mult 32b, 8 rows/stg", pipelined_multiplier(32, 8));
  scale_row("random 5k", big_random(5000, 1));
  scale_row("random 20k", big_random(20000, 2));
  if (std::getenv("RTV_SCALE_BIG") != nullptr) {
    scale_row("random 50k", big_random(50000, 3));  // ~15 min: opt-in
  } else {
    std::printf("%-22s (set RTV_SCALE_BIG=1 to run; ~15 minutes)\n",
                "random 50k");
  }
  std::printf("\n(times in seconds; [SR94] reports 50k-gate circuits as the\n"
              "practical frontier of 1994 — shape target: near-linear graph\n"
              "construction, super-linear but tractable optimization)\n");
}

namespace {

void BM_GraphConstruction(benchmark::State& state) {
  const Netlist n = big_random(static_cast<unsigned>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RetimeGraph::from_netlist(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GraphConstruction)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity();

void BM_MinPeriodFeas(benchmark::State& state) {
  const Netlist n = big_random(static_cast<unsigned>(state.range(0)), 10);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_period_retime_feas(g));
  }
}
BENCHMARK(BM_MinPeriodFeas)->Arg(1000)->Arg(4000);

void BM_MinArea(benchmark::State& state) {
  const Netlist n = big_random(static_cast<unsigned>(state.range(0)), 11);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_area_retime(g));
  }
}
BENCHMARK(BM_MinArea)->Arg(1000)->Arg(4000);

void BM_MinPeriodOptSmall(benchmark::State& state) {
  // The exact O(V^3) OPT algorithm for comparison at small sizes.
  const Netlist n = big_random(static_cast<unsigned>(state.range(0)), 12);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_period_retime_opt(g));
  }
}
BENCHMARK(BM_MinPeriodOptSmall)->Arg(250)->Arg(1000);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
