// E12 — batch fault-simulation throughput: the PR-1 reference CLS loop
// (cls_fault_simulate: one full packed pass over the whole test set per
// fault) vs the multi-threaded engine behind fault_simulate (shared good
// responses, word-at-a-time early exit, fault dropping).
//
// Besides the console table, the report emits a machine-readable
// BENCH_fault.json (path overridable via RTV_BENCH_JSON) recording
// baseline-vs-engine fault throughput; the binary cross-checks that both
// sides report the identical detected-fault set before writing, and exits
// non-zero if the JSON fails its own schema check. RTV_BENCH_SMOKE=1
// shrinks every workload so CI can run the report in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Mostly-combinational random netlist: few latches keeps CLS coverage high,
/// which is the realistic regime for early exit (most faults are caught by
/// an early word of the test set).
Netlist workload(unsigned gates, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 12;
  opt.num_outputs = 12;
  opt.num_gates = gates;
  opt.num_latches = gates / 64;
  opt.latch_after_gate_probability = 0.02;
  return random_netlist(opt, rng);
}

std::vector<BitsSeq> make_tests(const Netlist& n, unsigned count,
                                unsigned cycles, Rng& rng) {
  std::vector<BitsSeq> tests(count);
  for (BitsSeq& test : tests) {
    test.reserve(cycles);
    for (unsigned t = 0; t < cycles; ++t) {
      Bits in(n.primary_inputs().size());
      for (auto& v : in) v = rng.coin();
      test.push_back(std::move(in));
    }
  }
  return tests;
}

struct Row {
  std::string name;
  std::size_t gates = 0;
  std::size_t faults = 0;
  unsigned tests = 0;
  unsigned cycles = 0;
  double coverage = 0.0;
  double baseline_fps = 0.0;  ///< faults per second, cls_fault_simulate
  double engine_fps = 0.0;    ///< faults per second, FaultSimEngine kCls
  double speedup = 0.0;
};

Row measure(const std::string& name, const Netlist& n, unsigned num_tests,
            unsigned cycles) {
  Rng rng(0xE12u);
  const std::vector<Fault> faults = collapse_faults(n);
  const std::vector<BitsSeq> tests = make_tests(n, num_tests, cycles, rng);

  const auto t0 = std::chrono::steady_clock::now();
  const FaultSimResult base = cls_fault_simulate(n, faults, tests);
  const double baseline_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  options.threads = 0;  // all hardware threads
  options.drop_detected = true;
  const FaultSimResult r = fault_simulate(n, faults, tests, options);

  if (r.detected != base.detected) {
    std::fprintf(stderr,
                 "error: engine and baseline disagree on the detected-fault "
                 "set for workload %s\n",
                 name.c_str());
    std::exit(1);
  }

  Row row;
  row.name = name;
  row.gates = n.num_gates();
  row.faults = faults.size();
  row.tests = num_tests;
  row.cycles = cycles;
  row.coverage = r.coverage;
  row.baseline_fps = static_cast<double>(faults.size()) / baseline_s;
  row.engine_fps = static_cast<double>(faults.size()) / r.wall_seconds;
  row.speedup = row.engine_fps / row.baseline_fps;
  return row;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_fault.json";
}

std::string render_bench_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"fault_throughput\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"mode\": \"cls\",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"gates\": " << r.gates << ",\n";
    os << "      \"faults\": " << r.faults << ",\n";
    os << "      \"tests\": " << r.tests << ",\n";
    os << "      \"cycles\": " << r.cycles << ",\n";
    os << "      \"coverage\": " << r.coverage << ",\n";
    os << "      \"baseline_faults_per_sec\": " << r.baseline_fps << ",\n";
    os << "      \"engine_faults_per_sec\": " << r.engine_fps << ",\n";
    os << "      \"speedup\": " << r.speedup << "\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys
/// present, braces/brackets balanced, at least one workload, every speedup
/// positive. Returns an error description or "".
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"", "\"mode\"",
        "\"workloads\"", "\"name\"", "\"gates\"", "\"faults\"", "\"tests\"",
        "\"cycles\"", "\"coverage\"", "\"baseline_faults_per_sec\"",
        "\"engine_faults_per_sec\"", "\"speedup\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  std::size_t pos = 0;
  unsigned speedups = 0;
  while ((pos = text.find("\"speedup\":", pos)) != std::string::npos) {
    pos += 10;
    const double v = std::strtod(text.c_str() + pos, nullptr);
    if (!(v > 0.0)) return "non-positive speedup";
    ++speedups;
  }
  if (speedups == 0) return "no workloads";
  return "";
}

void emit_bench_json(const std::vector<Row>& rows) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

}  // namespace

void report() {
  bench::heading("E12 / fault sim",
                 "CLS faults per second: reference full-pass loop vs the "
                 "early-exit fault-dropping engine");
  const bool smoke = smoke_mode();
  const unsigned tests = smoke ? 96 : 512;
  const unsigned cycles = smoke ? 4 : 12;

  std::vector<Row> rows;
  rows.push_back(measure("random512", workload(512, 42), tests, cycles));
  if (!smoke) {
    rows.push_back(measure("random2048", workload(2048, 42), tests, cycles));
    rows.push_back(
        measure("ctrl_datapath64", controller_datapath(64), tests, cycles));
  }

  std::printf("%-16s %-8s %-8s %-10s %-14s %-14s %-8s\n", "workload", "gates",
              "faults", "coverage", "base flt/s", "engine flt/s", "speedup");
  for (const Row& r : rows) {
    std::printf("%-16s %-8zu %-8zu %-10.2f %-14.3g %-14.3g %-8.1f\n",
                r.name.c_str(), r.gates, r.faults, r.coverage, r.baseline_fps,
                r.engine_fps, r.speedup);
  }
  std::printf("(%u tests x %u cycles per workload, random binary inputs, "
              "collapsed fault list;\nboth sides verified to report the "
              "identical detected-fault set)\n",
              tests, cycles);
  emit_bench_json(rows);
}

namespace {

void BM_EngineCls(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 42);
  const std::vector<Fault> faults = collapse_faults(n);
  Rng rng(0xE12u);
  const std::vector<BitsSeq> tests = make_tests(n, 128, 8, rng);
  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  options.threads = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault_simulate(n, faults, tests, options));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(faults.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_EngineCls)->Arg(256)->Arg(1024);

void BM_BaselineCls(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 42);
  const std::vector<Fault> faults = collapse_faults(n);
  Rng rng(0xE12u);
  const std::vector<BitsSeq> tests = make_tests(n, 128, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cls_fault_simulate(n, faults, tests));
  }
  state.counters["faults/s"] = benchmark::Counter(
      static_cast<double>(faults.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BaselineCls)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
