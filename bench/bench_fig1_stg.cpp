// E2 — Figures 1 & 2: the STGs of designs D and C, initializing sequences,
// and the delayed design C^1 (Section 3.4: C^1 is equivalent to D).

#include <cstdio>

#include "bench_util.hpp"
#include "gen/paper_circuits.hpp"
#include "io/dot_export.hpp"
#include "stg/stg.hpp"

namespace rtv {

void report() {
  bench::heading("E2 / Figures 1-2", "STGs of D and C; initialization");
  const Netlist dn = figure1_original();
  const Netlist cn = figure1_retimed();
  const Stg d = Stg::extract(dn);
  const Stg c = Stg::extract(cn);

  std::printf("design D (%s):\n%s", dn.summary().c_str(),
              d.to_string().c_str());
  std::printf("design C (%s):\n%s", cn.summary().c_str(),
              c.to_string().c_str());

  std::printf("input 0 initializes D: %s (paper: yes)\n",
              initializes(d, {0}) ? "yes" : "no");
  std::printf("input 0 initializes C: %s (paper: no)\n",
              initializes(c, {0}) ? "yes" : "no");

  std::vector<std::uint64_t> seq;
  if (find_initializing_sequence(c, 8, &seq)) {
    std::printf("shortest initializing sequence for C has length %zu: ",
                seq.size());
    for (const auto a : seq) std::printf("%llu.", static_cast<unsigned long long>(a));
    std::printf("\n");
  }

  const auto after1 = states_after_delay(c, 1);
  std::printf("states of C after 1 arbitrary cycle: ");
  for (std::uint64_t s = 0; s < c.num_states(); ++s) {
    if (after1[s]) std::printf("s%llu ", static_cast<unsigned long long>(s));
  }
  const Stg c1 = delayed_design(c, 1);
  std::printf("\nC^1 ⊑ D: %s, D ⊑ C^1: %s  (paper: C^1 equivalent to D)\n",
              implies(c1, d) ? "yes" : "no", implies(d, c1) ? "yes" : "no");
  std::printf("C ⊑ D: %s, C ≼ D: %s  (paper: both fail)\n",
              implies(c, d) ? "yes" : "no",
              safe_replacement(c, d) ? "yes" : "no");
  std::printf("\nGraphviz (design C STG):\n%s", stg_to_dot(c).c_str());
}

namespace {

void BM_StgExtract(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Stg::extract(c));
  }
}
BENCHMARK(BM_StgExtract);

void BM_SafeReplacementCheck(benchmark::State& state) {
  const Stg d = Stg::extract(figure1_original());
  const Stg c = Stg::extract(figure1_retimed());
  for (auto _ : state) {
    benchmark::DoNotOptimize(safe_replacement(c, d));
  }
}
BENCHMARK(BM_SafeReplacementCheck);

void BM_DelayedDesign(benchmark::State& state) {
  const Stg c = Stg::extract(figure1_retimed());
  for (auto _ : state) {
    benchmark::DoNotOptimize(delayed_design(c, 1));
  }
}
BENCHMARK(BM_DelayedDesign);

void BM_FindInitializingSequence(benchmark::State& state) {
  const Stg c = Stg::extract(figure1_retimed());
  std::vector<std::uint64_t> seq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_initializing_sequence(c, 8, &seq));
  }
}
BENCHMARK(BM_FindInitializingSequence);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
