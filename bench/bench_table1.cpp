// E1 — Table 1: simulation results for D and C on input sequence 0.1.1.1
// from every power-up state, plus the "sufficiently powerful simulator"
// (exact three-valued) rows the paper discusses below the table.

#include <cstdio>

#include "bench_util.hpp"
#include "gen/paper_circuits.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"

namespace rtv {

const BitsSeq kInput = bits_seq_from_string("0.1.1.1");

void report() {
  bench::heading("E1 / Table 1",
                 "simulation of D and C on input sequence 0.1.1.1");
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();

  std::printf("%-22s %-16s | %-22s %-16s\n", "power-up state of D",
              "output sequence", "power-up state of C", "output sequence");
  const char* d_states[] = {"0", "1"};
  const char* c_states[] = {"00", "11", "01", "10"};
  for (int row = 0; row < 4; ++row) {
    std::string dcol_state, dcol_out;
    if (row < 2) {
      BinarySimulator sim(d);
      sim.set_state(bits_from_string(d_states[row]));
      dcol_state = d_states[row];
      dcol_out = sequence_to_string(sim.run(kInput));
    }
    BinarySimulator sim(c);
    sim.set_state(bits_from_string(c_states[row]));
    std::printf("%-22s %-16s | %-22s %-16s\n", dcol_state.c_str(),
                dcol_out.c_str(), c_states[row],
                sequence_to_string(sim.run(kInput)).c_str());
  }

  ExactTernarySimulator ed(d), ec(c);
  std::printf("\npowerful (exact 3-valued) simulator, all power-up states:\n");
  std::printf("  D: %s   (paper: 0.0.1.0)\n",
              sequence_to_string(ed.run(kInput)).c_str());
  std::printf("  C: %s   (paper: 0.X.X.X)\n",
              sequence_to_string(ec.run(kInput)).c_str());

  ClsSimulator cd(d), cc(c);
  std::printf("\nconservative 3-valued simulator (CLS) from all-X:\n");
  std::printf("  D: %s   C: %s   (identical — Corollary 5.3)\n",
              sequence_to_string(cd.run(kInput)).c_str(),
              sequence_to_string(cc.run(kInput)).c_str());
}

namespace {

void BM_BinarySimStep(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  BinarySimulator sim(c);
  sim.set_state(bits_from_string("00"));
  const Bits in = bits_from_string("1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
}
BENCHMARK(BM_BinarySimStep);

void BM_ExactSimRunTable1(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    ExactTernarySimulator sim(c);
    benchmark::DoNotOptimize(sim.run(kInput));
  }
}
BENCHMARK(BM_ExactSimRunTable1);

void BM_ClsSimRunTable1(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    ClsSimulator sim(c);
    benchmark::DoNotOptimize(sim.run(kInput));
  }
}
BENCHMARK(BM_ClsSimRunTable1);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
