// E6 — Proposition 4.1 / Corollary 4.4 as a measured experiment: random
// circuits, random move sequences that avoid forward-across-non-justifiable
// moves, exact STG check that C ⊑ D (hence C ≼ D) holds in 100% of cases;
// and, for contrast, how often unsafe sequences actually break C ⊑ D.

#include <cstdio>

#include "bench_util.hpp"
#include "core/safety.hpp"
#include "gen/random_circuits.hpp"
#include "retime/moves.hpp"
#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

/// Applies up to `max_moves` random enabled moves; if safe_only, skips
/// forward moves across non-justifiable elements. Returns the moves taken.
std::vector<RetimingMove> random_move_sequence(Netlist& n, Rng& rng,
                                               int max_moves,
                                               bool safe_only) {
  std::vector<RetimingMove> taken;
  for (int i = 0; i < max_moves; ++i) {
    auto moves = enabled_moves(n);
    if (safe_only) {
      std::erase_if(moves, [&](const RetimingMove& m) {
        return !classify_move(n, m).preserves_safe_replacement();
      });
    }
    if (moves.empty()) break;
    const RetimingMove m = moves[rng.index(moves.size())];
    apply_move(n, m);
    taken.push_back(m);
  }
  return taken;
}

struct SweepRow {
  int trials = 0;
  int implication_holds = 0;
  int safe_holds = 0;
};

SweepRow sweep(bool safe_only, std::uint64_t seed, int trials) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 12;
  opt.num_latches = 3;
  opt.latch_after_gate_probability = 0.3;
  SweepRow row;
  for (int t = 0; t < trials; ++t) {
    const Netlist original = random_netlist(opt, rng);
    if (original.num_latches() > 8) continue;
    Netlist retimed = original;
    const auto moves = random_move_sequence(retimed, rng, 6, safe_only);
    if (moves.empty() || retimed.num_latches() > 10) continue;
    const Stg d = Stg::extract(original);
    const Stg c = Stg::extract(retimed);
    ++row.trials;
    row.implication_holds += implies(c, d);
    row.safe_holds += safe_replacement(c, d);
  }
  return row;
}

}  // namespace

void report() {
  bench::heading("E6 / Prop 4.1, Cor 4.4",
                 "safe-move-only retiming preserves C ⊑ D (exact STG check)");
  const SweepRow safe = sweep(/*safe_only=*/true, 11, 60);
  const SweepRow any = sweep(/*safe_only=*/false, 12, 60);
  std::printf("%-26s %-8s %-14s %-14s\n", "move policy", "trials", "C ⊑ D",
              "C ≼ D");
  std::printf("%-26s %-8d %3d/%-10d %3d/%-10d  <- must be 100%%\n",
              "safe moves only (Cor 4.4)", safe.trials,
              safe.implication_holds, safe.trials, safe.safe_holds,
              safe.trials);
  std::printf("%-26s %-8d %3d/%-10d %3d/%-10d  <- may drop (Sec 2.1)\n",
              "unrestricted moves", any.trials, any.implication_holds,
              any.trials, any.safe_holds, any.trials);
}

namespace {

void BM_SafeSweepTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweep(true, seed++, 2));
  }
}
BENCHMARK(BM_SafeSweepTrial);

void BM_ImpliesCheck(benchmark::State& state) {
  Rng rng(5);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 14;
  const Netlist n = random_netlist(opt, rng);
  const Stg s = Stg::extract(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(implies(s, s));
  }
}
BENCHMARK(BM_ImpliesCheck);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
