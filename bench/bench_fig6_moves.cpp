// E5 — Figures 5-6: junctions as multi-output JUNC cells and the atomic
// forward/backward retiming moves; classification census over generated
// circuits and move-engine throughput.

#include <cstdio>

#include "bench_util.hpp"
#include "gen/random_circuits.hpp"
#include "retime/moves.hpp"
#include "util/rng.hpp"

namespace rtv {

void report() {
  bench::heading("E5 / Figures 5-6",
                 "atomic move census over random junction-normal netlists");
  std::printf("%-8s %-8s %-10s %-10s %-12s %-14s\n", "gates", "latches",
              "enabled", "fwd", "bwd", "fwd-non-just");
  Rng rng(2025);
  for (const unsigned gates : {20u, 80u, 320u}) {
    RandomCircuitOptions opt;
    opt.num_inputs = 4;
    opt.num_outputs = 4;
    opt.num_gates = gates;
    opt.num_latches = gates / 4;
    opt.latch_after_gate_probability = 0.3;
    const Netlist n = random_netlist(opt, rng);
    const auto moves = enabled_moves(n);
    std::size_t fwd = 0, bwd = 0, fwd_nj = 0;
    for (const auto& m : moves) {
      const MoveClass cls = classify_move(n, m);
      if (cls.direction == MoveDirection::kForward) {
        ++fwd;
        if (!cls.justifiable) ++fwd_nj;
      } else {
        ++bwd;
      }
    }
    std::printf("%-8zu %-8zu %-10zu %-10zu %-12zu %-14zu\n", n.num_gates(),
                n.num_latches(), moves.size(), fwd, bwd, fwd_nj);
  }
  std::printf("\n(forward moves across non-justifiable elements are the only\n"
              "move kind that can violate safe replacement — Section 4)\n");
}

namespace {

Netlist bench_circuit(unsigned gates) {
  Rng rng(7);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_outputs = 4;
  opt.num_gates = gates;
  opt.num_latches = gates / 4;
  opt.latch_after_gate_probability = 0.3;
  return random_netlist(opt, rng);
}

void BM_EnumerateEnabledMoves(benchmark::State& state) {
  const Netlist n = bench_circuit(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enabled_moves(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnumerateEnabledMoves)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_ApplyUndoMovePair(benchmark::State& state) {
  // Apply a forward move and its inverse backward move repeatedly.
  Netlist n = bench_circuit(128);
  // Find a persistent forward-capable element.
  RetimingMove fwd{NodeId(), MoveDirection::kForward};
  for (const auto& m : enabled_moves(n)) {
    if (m.direction == MoveDirection::kForward && n.num_pins(m.element) > 0) {
      fwd = m;
      break;
    }
  }
  if (!fwd.element.valid()) {
    state.SkipWithError("no forward move available");
    return;
  }
  const RetimingMove bwd{fwd.element, MoveDirection::kBackward};
  for (auto _ : state) {
    apply_move(n, fwd);
    apply_move(n, bwd);
  }
}
BENCHMARK(BM_ApplyUndoMovePair);

void BM_ClassifyMove(benchmark::State& state) {
  const Netlist n = bench_circuit(128);
  const auto moves = enabled_moves(n);
  if (moves.empty()) {
    state.SkipWithError("no moves");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_move(n, moves[i % moves.size()]));
    ++i;
  }
}
BENCHMARK(BM_ClassifyMove);

void BM_Junctionize(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    RandomCircuitOptions opt;
    opt.num_gates = static_cast<unsigned>(state.range(0));
    opt.num_latches = opt.num_gates / 4;
    Netlist n = random_netlist(opt, rng);  // already junctionized inside
    state.ResumeTiming();
    benchmark::DoNotOptimize(n.junctionize());
  }
}
BENCHMARK(BM_Junctionize)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
