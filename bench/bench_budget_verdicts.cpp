// Robustness — time-to-first-verdict under resource governance: every
// budgeted entry point (CLS equivalence, STG extraction, symbolic
// reachability, fault simulation, validate, flow) measured without a budget
// and again under a 100 ms wall-clock deadline.
//
// The report asserts the governance contract before writing anything:
// budgeted runs must return within 2x the deadline (cooperative
// checkpoints are frequent enough that overshoot is bounded by one unit of
// work), and a run whose budget blew must never label its verdict
// "proven". The machine-readable BENCH_robustness.json (path overridable
// via RTV_BENCH_JSON) records both timings and verdicts per entry point;
// the binary re-reads and schema-checks the file, exiting non-zero on any
// violation so the contract cannot silently bit-rot. RTV_BENCH_SMOKE=1
// shrinks the workloads so CI can run the report in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bdd/symbolic.hpp"
#include "core/cls_equiv.hpp"
#include "core/flow.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "retime/graph.hpp"
#include "sim/vectors.hpp"
#include "stg/stg.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

constexpr std::uint64_t kDeadlineMs = 100;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct Row {
  std::string entry_point;
  double full_ms = 0.0;          ///< unbudgeted time to verdict
  std::string full_verdict;
  double budgeted_ms = 0.0;      ///< with the 100 ms deadline
  std::string budgeted_verdict;
  bool budget_blew = false;      ///< the deadline actually bit
  bool within_2x = false;        ///< budgeted_ms <= 2 * deadline
  bool honest = false;           ///< blew -> verdict is not "proven"
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

ResourceLimits deadline_limits() {
  ResourceLimits limits;
  limits.time_budget_ms = kDeadlineMs;
  return limits;
}

/// Runs `body` twice — ungoverned, then under the deadline — and fills the
/// contract fields. `body` returns (verdict label, budget blew).
template <typename Body>
Row measure(const std::string& name, Body&& body) {
  Row row;
  row.entry_point = name;

  const auto t0 = std::chrono::steady_clock::now();
  const auto full = body(nullptr);
  row.full_ms = ms_since(t0);
  row.full_verdict = full.first;

  ResourceBudget budget(deadline_limits());
  const auto t1 = std::chrono::steady_clock::now();
  const auto bounded = body(&budget);
  row.budgeted_ms = ms_since(t1);
  row.budgeted_verdict = bounded.first;
  row.budget_blew = bounded.second;
  row.within_2x = row.budgeted_ms <= 2.0 * static_cast<double>(kDeadlineMs);
  row.honest = !(row.budget_blew && row.budgeted_verdict == "proven");
  return row;
}

using VerdictLabel = std::pair<std::string, bool>;

Netlist random_workload(unsigned gates, unsigned latches, unsigned inputs,
                        std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = inputs;
  opt.num_outputs = 8;
  opt.num_gates = gates;
  opt.num_latches = latches;
  opt.latch_after_gate_probability = 0.05;
  return random_netlist(opt, rng);
}

std::vector<Row> run_report(bool smoke) {
  std::vector<Row> rows;

  // CLS equivalence, exhaustive regime: the bench_thm51_cls shape (few
  // inputs, gates/4 latches) keeps 3^I under max_branching, so the pair
  // BFS runs and the deadline bites at its per-pair checkpoints.
  {
    const unsigned gates = smoke ? 24 : 96;
    const Netlist n = random_workload(gates, gates / 4, 4, 0xB1);
    rows.push_back(measure("cls_exhaustive", [&](ResourceBudget* b) {
      const ClsEquivalenceResult r = check_cls_equivalence(n, n, {}, b);
      return VerdictLabel{to_string(r.verdict),
                          r.verdict == Verdict::kExhausted};
    }));
  }

  // CLS equivalence, bounded regime: many inputs force bounded random
  // checking, whose per-cycle checkpoints carry the deadline instead.
  {
    const Netlist n =
        random_workload(smoke ? 256 : 4096, smoke ? 8 : 24, 12, 0xB1);
    ClsEquivOptions opt;
    opt.random_sequences = smoke ? 32 : 2000;
    opt.random_length = smoke ? 8 : 64;
    rows.push_back(measure("cls_bounded", [&](ResourceBudget* b) {
      const ClsEquivalenceResult r = check_cls_equivalence(n, n, opt, b);
      return VerdictLabel{to_string(r.verdict), r.verdict == Verdict::kExhausted};
    }));
  }

  // STG extraction: per-state-row checkpoints; cannot return a partial
  // machine, so exhaustion surfaces as ResourceExhausted.
  {
    const Netlist n = random_workload(smoke ? 96 : 512, smoke ? 6 : 13,
                                      smoke ? 2 : 4, 0xB2);
    rows.push_back(measure("stg_extract", [&](ResourceBudget* b) {
      try {
        const Stg stg = Stg::extract(n, kDefaultStgEntryCap, b);
        (void)stg.num_states();
        return VerdictLabel{"proven", false};
      } catch (const ResourceExhausted&) {
        return VerdictLabel{"exhausted", true};
      }
    }));
  }

  // Symbolic reachability: checkpoints per image iteration and per BDD
  // node-allocation probe.
  {
    const Netlist n = random_workload(smoke ? 128 : 1024, smoke ? 12 : 48,
                                      8, 0xB3);
    const Bits zero(n.latches().size(), 0);
    rows.push_back(measure("symbolic_reach", [&](ResourceBudget* b) {
      try {
        SymbolicMachine machine(n, kDefaultBddNodeLimit, b);
        machine.reachable(machine.state_cube(zero));
        return VerdictLabel{"proven", false};
      } catch (const ResourceExhausted&) {
        return VerdictLabel{"exhausted", true};
      }
    }));
  }

  // Fault simulation: per-fault and per-test checkpoints in the workers;
  // exhaustion leaves the remaining faults undecided.
  {
    const Netlist n = random_workload(smoke ? 256 : 4096, 8, 12, 0xB4);
    const std::vector<Fault> faults = collapse_faults(n);
    Rng rng(0xB4);
    std::vector<BitsSeq> tests(smoke ? 32 : 512);
    for (BitsSeq& t : tests) {
      for (unsigned c = 0; c < (smoke ? 4u : 16u); ++c) {
        Bits in(n.primary_inputs().size());
        for (auto& v : in) v = rng.coin();
        t.push_back(std::move(in));
      }
    }
    rows.push_back(measure("fault_sim", [&](ResourceBudget* b) {
      FaultSimOptions opt;
      opt.mode = FaultSimMode::kCls;
      opt.threads = 1;
      if (b != nullptr) opt.budget = b->limits();
      const FaultSimResult r = fault_simulate(n, faults, tests, opt);
      return VerdictLabel{r.complete ? "bounded" : "exhausted", !r.complete};
    }));
  }

  // validate: the full pipeline behind `rtv validate` (CLS + the STG phase
  // whenever the design fits the exact-analysis caps).
  {
    const Netlist n = controller_datapath(smoke ? 8 : 48);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const std::vector<int> lag(g.num_vertices(), 0);
    VerifyOptions vopt;
    // Bounded mode outright: the exhaustive pair BFS takes minutes on the
    // datapath, and bounded checking is the realistic regime this report
    // is about (the budget behavior is identical).
    vopt.explicit_opts.max_branching = 1;
    vopt.explicit_opts.random_sequences = smoke ? 16 : 500;
    vopt.explicit_opts.random_length = smoke ? 8 : 64;
    rows.push_back(measure("validate", [&](ResourceBudget* b) {
      ValidationOptions opt;
      opt.verify = vopt;
      if (b != nullptr) opt.budget = b->limits();
      const RetimingValidation v = validate_retiming(n, g, lag, opt);
      return VerdictLabel{to_string(v.verdict),
                          v.verdict == Verdict::kExhausted};
    }));
  }

  // flow: cleanup + retiming + CLS gate behind `rtv flow`.
  {
    const Netlist n = controller_datapath(smoke ? 8 : 48);
    VerifyOptions vopt;
    vopt.explicit_opts.max_branching = 1;  // bounded mode, as above
    vopt.explicit_opts.random_sequences = smoke ? 16 : 500;
    vopt.explicit_opts.random_length = smoke ? 8 : 64;
    rows.push_back(measure("flow", [&](ResourceBudget* b) {
      FlowOptions opt;
      opt.verify = vopt;
      if (b != nullptr) opt.budget = b->limits();
      const FlowReport r = run_synthesis_flow(n, opt);
      return VerdictLabel{to_string(r.verdict),
                          r.verdict == Verdict::kExhausted};
    }));
  }

  return rows;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_robustness.json";
}

std::string render_bench_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"budget_verdicts\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"deadline_ms\": " << kDeadlineMs << ",\n";
  os << "  \"entry_points\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.entry_point << "\",\n";
    os << "      \"full_ms\": " << r.full_ms << ",\n";
    os << "      \"full_verdict\": \"" << r.full_verdict << "\",\n";
    os << "      \"budgeted_ms\": " << r.budgeted_ms << ",\n";
    os << "      \"budgeted_verdict\": \"" << r.budgeted_verdict << "\",\n";
    os << "      \"budget_blew\": " << (r.budget_blew ? "true" : "false")
       << ",\n";
    os << "      \"within_2x_deadline\": " << (r.within_2x ? "true" : "false")
       << ",\n";
    os << "      \"honest_degradation\": " << (r.honest ? "true" : "false")
       << "\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys,
/// balanced nesting, at least one entry point, and the two contract flags
/// true in every row.
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"", "\"deadline_ms\"",
        "\"entry_points\"", "\"name\"", "\"full_ms\"", "\"full_verdict\"",
        "\"budgeted_ms\"", "\"budgeted_verdict\"", "\"budget_blew\"",
        "\"within_2x_deadline\"", "\"honest_degradation\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  std::size_t pos = 0;
  unsigned entries = 0;
  while ((pos = text.find("\"within_2x_deadline\":", pos)) !=
         std::string::npos) {
    pos += 21;
    if (text.compare(pos, 5, " true") != 0) {
      return "an entry point overran 2x its deadline";
    }
    ++entries;
  }
  if (entries == 0) return "no entry points";
  pos = 0;
  while ((pos = text.find("\"honest_degradation\":", pos)) !=
         std::string::npos) {
    pos += 21;
    if (text.compare(pos, 5, " true") != 0) {
      return "a degraded run masqueraded as proven";
    }
  }
  return "";
}

void emit_bench_json(const std::vector<Row>& rows) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

}  // namespace

void report() {
  bench::heading("robustness / budget verdicts",
                 "time-to-first-verdict per governed entry point, "
                 "ungoverned vs a 100 ms wall-clock budget");
  const std::vector<Row> rows = run_report(smoke_mode());

  std::printf("%-16s %-12s %-10s %-12s %-10s %-6s %-8s\n", "entry point",
              "full ms", "verdict", "budget ms", "verdict", "blew",
              "<=2x dl");
  for (const Row& r : rows) {
    std::printf("%-16s %-12.2f %-10s %-12.2f %-10s %-6s %-8s\n",
                r.entry_point.c_str(), r.full_ms, r.full_verdict.c_str(),
                r.budgeted_ms, r.budgeted_verdict.c_str(),
                r.budget_blew ? "yes" : "no", r.within_2x ? "yes" : "NO");
    if (!r.within_2x) {
      std::fprintf(stderr,
                   "error: %s overran 2x its %llu ms deadline (%.2f ms)\n",
                   r.entry_point.c_str(),
                   static_cast<unsigned long long>(kDeadlineMs),
                   r.budgeted_ms);
      std::exit(1);
    }
    if (!r.honest) {
      std::fprintf(stderr,
                   "error: %s blew its budget but reported 'proven'\n",
                   r.entry_point.c_str());
      std::exit(1);
    }
  }
  std::printf("(deadline %llu ms; a budgeted run must return within 2x the "
              "deadline\nand must never label a degraded verdict as proven)\n",
              static_cast<unsigned long long>(kDeadlineMs));
  emit_bench_json(rows);
}

}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
