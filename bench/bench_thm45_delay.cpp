// E7 — Theorem 4.5 / Corollary 4.3: with at most k forward moves across any
// non-justifiable element, C^k ⊑ D. Measures, for constructions with
// k = 0..3, the exact minimal delay n with C^n ⊑ D and checks n <= k.

#include <cstdio>

#include "bench_util.hpp"
#include "core/safety.hpp"
#include "gen/paper_circuits.hpp"
#include "retime/moves.hpp"
#include "stg/stg.hpp"

namespace rtv {

namespace {

/// Loop circuit latch -> JUNC2 -> inverter -> latch with an observation
/// branch (the k-lap testbed from the test suite, parameterized by laps).
Netlist lap_circuit() {
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId j = n.add_junc(2, "J");
  const NodeId latch = n.add_latch("L");
  n.connect(PortRef(j, 0), PinRef(inv, 0));
  n.connect(PortRef(inv, 0), PinRef(latch, 0));
  n.connect(PortRef(latch, 0), PinRef(j, 0));
  n.connect(PortRef(j, 1), PinRef(o, 0));
  n.check_valid(true);
  return n;
}

/// Moves that push the loop latch forward around `laps` times.
std::vector<RetimingMove> lap_moves(const Netlist& n, int laps) {
  std::vector<RetimingMove> moves;
  const NodeId j = n.find_by_name("J");
  const NodeId inv = n.find_by_name("inv");
  for (int i = 0; i < laps; ++i) {
    moves.push_back({j, MoveDirection::kForward});
    moves.push_back({inv, MoveDirection::kForward});
  }
  if (laps > 0) moves.pop_back();  // end with the junction move
  return moves;
}

}  // namespace

void report() {
  bench::heading("E7 / Thm 4.5",
                 "k forward junction moves => C^k ⊑ D, measured exactly");
  std::printf("%-28s %-6s %-14s %-14s %-10s\n", "construction", "k",
              "measured n", "C ⊑ D", "bound ok");

  // k = 0: backward-only retiming of the paper circuit C -> D direction.
  {
    const Netlist c = figure1_retimed();
    Netlist d = c;
    apply_move(d, {d.find_by_name("J1"), MoveDirection::kBackward});
    const Stg sc = Stg::extract(d);        // retimed design (backward move)
    const Stg sd = Stg::extract(c);        // original
    const int n = min_delay_for_implication(sc, sd, 8);
    std::printf("%-28s %-6d %-14d %-14s %-10s\n", "figure1 backward move", 0,
                n, implies(sc, sd) ? "yes" : "no", n <= 0 ? "yes" : "NO");
  }
  // k = 1: the paper's own move.
  {
    Netlist c = figure1_original();
    apply_move(c, {c.find_by_name("J1"), MoveDirection::kForward});
    const Stg sd = Stg::extract(figure1_original());
    const Stg sc = Stg::extract(c);
    const int n = min_delay_for_implication(sc, sd, 8);
    std::printf("%-28s %-6d %-14d %-14s %-10s\n", "figure1 forward move", 1,
                n, implies(sc, sd) ? "yes" : "no", n <= 1 ? "yes" : "NO");
  }
  // k = 1..3 on the lap circuit.
  for (int laps = 1; laps <= 3; ++laps) {
    const Netlist d = lap_circuit();
    Netlist retimed;
    const SafetyReport r =
        analyze_move_sequence(d, lap_moves(d, laps), &retimed);
    const Stg sd = Stg::extract(d);
    const Stg sc = Stg::extract(retimed);
    const int n = min_delay_for_implication(sc, sd, 12);
    std::printf("%-28s %-6zu %-14d %-14s %-10s\n",
                ("loop circuit, " + std::to_string(laps) + " lap(s)").c_str(),
                r.delay_bound, n, implies(sc, sd) ? "yes" : "no",
                n >= 0 && static_cast<std::size_t>(n) <= r.delay_bound
                    ? "yes"
                    : "NO");
  }
  std::printf("\n(paper: measured n never exceeds the Thm 4.5 bound k; the\n"
              "bound is tight for the figure-1 move)\n");
}

namespace {

void BM_MinDelaySearch(benchmark::State& state) {
  Netlist c = figure1_original();
  apply_move(c, {c.find_by_name("J1"), MoveDirection::kForward});
  const Stg sd = Stg::extract(figure1_original());
  const Stg sc = Stg::extract(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_delay_for_implication(sc, sd, 8));
  }
}
BENCHMARK(BM_MinDelaySearch);

void BM_AnalyzeMoveSequence(benchmark::State& state) {
  const Netlist d = lap_circuit();
  const auto moves = lap_moves(d, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_move_sequence(d, moves, nullptr));
  }
}
BENCHMARK(BM_AnalyzeMoveSequence);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
