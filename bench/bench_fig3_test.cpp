// E3 — Figure 3 / Section 2.2: retiming invalidates the test sequence 0.1
// for the AND1-output stuck-at-1 fault; prepending one arbitrary cycle
// restores detection (Theorem 4.6), distinguishing on the 3rd clock cycle.

#include <cstdio>

#include "bench_util.hpp"
#include "core/test_preserve.hpp"
#include "fault/test_eval.hpp"
#include "gen/paper_circuits.hpp"

namespace rtv {

void report() {
  bench::heading("E3 / Figure 3", "test-sequence preservation under retiming");
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const Fault fd = fault_on(d, kFigure3FaultGate, 0, true);
  const Fault fc = fault_on(c, kFigure3FaultGate, 0, true);

  const auto show = [](const char* label, const Netlist& n, const Fault& f,
                       const char* test_str) {
    const BitsSeq test = bits_seq_from_string(test_str);
    const TritsSeq good = exact_response(n, test);
    const TritsSeq bad = exact_response(inject_fault(n, f), test);
    std::printf("  %-28s test %-7s fault-free %-8s faulty %-8s -> %s\n",
                label, test_str, sequence_to_string(good).c_str(),
                sequence_to_string(bad).c_str(),
                responses_distinguish(good, bad) ? "DETECTED" : "missed");
  };

  std::printf("fault: %s (the AND gate-1 output net)\n\n",
              describe(d, fd).c_str());
  show("original D", d, fd, "0.1");
  show("retimed C", c, fc, "0.1");
  std::printf("\nTheorem 4.6: delay the test by one arbitrary cycle:\n");
  show("retimed C", c, fc, "0.0.1");
  show("retimed C", c, fc, "1.0.1");

  const auto r =
      check_test_preservation(d, c, fd, bits_seq_from_string("0.1"), 1);
  std::printf("\nchecker verdict: %s\n", r.summary().c_str());
  std::printf("(paper: 0.1 detects in D, fails in C; 0.0.1 and 1.0.1 detect "
              "in C on the 3rd cycle)\n");
}

namespace {

void BM_TestDetectsExact(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  const Fault f = fault_on(c, kFigure3FaultGate, 0, true);
  const BitsSeq test = bits_seq_from_string("0.0.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(test_detects(c, f, test));
  }
}
BENCHMARK(BM_TestDetectsExact);

void BM_TestDetectsDelayed(benchmark::State& state) {
  const Netlist c = figure1_retimed();
  const Fault f = fault_on(c, kFigure3FaultGate, 0, true);
  const BitsSeq test = bits_seq_from_string("0.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(test_detects_delayed(c, f, test, 1));
  }
}
BENCHMARK(BM_TestDetectsDelayed);

void BM_CheckTestPreservation(benchmark::State& state) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const Fault f = fault_on(d, kFigure3FaultGate, 0, true);
  const BitsSeq test = bits_seq_from_string("0.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_test_preservation(d, c, f, test, 1));
  }
}
BENCHMARK(BM_CheckTestPreservation);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
