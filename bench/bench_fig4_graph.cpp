// E4 — Figure 4: the Leiserson–Saxe edge-weighted digraph cannot tell the
// paper's D and C apart: identical vertex/edge structure — the latch's
// position relative to the fanout junction lives only in the netlist.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/paper_circuits.hpp"
#include "retime/graph.hpp"
#include "retime/wd.hpp"

namespace rtv {

namespace {

std::vector<std::string> edge_signature(const RetimeGraph& g,
                                        const Netlist& n,
                                        bool with_weights) {
  std::vector<std::string> sig;
  for (const auto& e : g.edges()) {
    const auto vname = [&](std::uint32_t v) {
      return v <= RetimeGraph::kHostSink ? std::string("host")
                                         : n.name(g.vertex_origin(v));
    };
    std::string s = vname(e.from) + " -> " + vname(e.to);
    if (with_weights) s += " (w=" + std::to_string(e.weight) + ")";
    sig.push_back(s);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

void report() {
  bench::heading("E4 / Figure 4", "D and C share one retiming graph");
  const Netlist dn = figure1_original();
  const Netlist cn = figure1_retimed();
  const RetimeGraph gd = RetimeGraph::from_netlist(dn);
  const RetimeGraph gc = RetimeGraph::from_netlist(cn);

  std::printf("D: %s\nC: %s\n\n", gd.summary().c_str(), gc.summary().c_str());
  std::printf("%-28s | %-28s\n", "edges of graph(D)", "edges of graph(C)");
  const auto sd = edge_signature(gd, dn, true);
  const auto sc = edge_signature(gc, cn, true);
  for (std::size_t i = 0; i < std::max(sd.size(), sc.size()); ++i) {
    std::printf("%-28s | %-28s\n", i < sd.size() ? sd[i].c_str() : "",
                i < sc.size() ? sc[i].c_str() : "");
  }
  std::printf("\nconnectivity identical: %s (paper: yes — only the weight\n"
              "placement across junction J1 differs, which is exactly what\n"
              "the graph model cannot express)\n",
              edge_signature(gd, dn, false) == edge_signature(gc, cn, false)
                  ? "yes"
                  : "no");
}

namespace {

void BM_GraphFromNetlist(benchmark::State& state) {
  const Netlist d = figure1_original();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RetimeGraph::from_netlist(d));
  }
}
BENCHMARK(BM_GraphFromNetlist);

void BM_ClockPeriod(benchmark::State& state) {
  const RetimeGraph g = RetimeGraph::from_netlist(figure1_original());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.clock_period());
  }
}
BENCHMARK(BM_ClockPeriod);

void BM_WdMatrices(benchmark::State& state) {
  const RetimeGraph g = RetimeGraph::from_netlist(figure1_original());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_wd(g));
  }
}
BENCHMARK(BM_WdMatrices);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
