// Substrate benchmark: the symbolic (BDD) engine vs explicit enumeration —
// delayed-design state sets, reachability and state-machine implication at
// latch counts where 2^L enumeration is already infeasible.

#include <cstdio>

#include "bench_util.hpp"
#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/moves.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

Netlist wide_random(unsigned latches, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_outputs = 4;
  opt.num_gates = latches * 3;
  opt.num_latches = latches;
  opt.max_fanin = 2;
  opt.latch_after_gate_probability = 0.0;
  return random_netlist(opt, rng);
}

}  // namespace

void report() {
  bench::heading("substrate / symbolic engine",
                 "BDD reachability where 2^L enumeration stops scaling");
  std::printf("%-22s %-10s %-14s %-16s %-12s\n", "workload", "latches",
              "delay-2 states", "reach from 0", "BDD nodes");
  const struct {
    const char* name;
    Netlist n;
  } cases[] = {
      {"s27", iscas_s27()},
      {"lfsr 24", lfsr(24, {0, 3, 5, 23})},
      {"random L=20", wide_random(20, 1)},
      {"random L=28", wide_random(28, 2)},
  };
  for (const auto& c : cases) {
    try {
      SymbolicMachine sm(c.n);
      const double delayed = sm.count_states(sm.states_after_delay(2));
      const double reach = sm.count_states(
          sm.reachable(sm.state_cube(Bits(c.n.num_latches(), 0))));
      std::printf("%-22s %-10zu %-14.4g %-16.4g %-12zu\n", c.name,
                  c.n.num_latches(), delayed, reach,
                  sm.manager().num_nodes());
    } catch (const CapacityError&) {
      // Random dense logic is BDD-hostile without variable reordering;
      // report the blowup honestly rather than hiding the workload.
      std::printf("%-22s %-10zu %-14s %-16s %-12s\n", c.name,
                  c.n.num_latches(), "blowup", "(node limit)", "-");
    }
  }

  // Symbolic implication on the paper pair.
  SymbolicImplication sym(figure1_retimed(), figure1_original());
  std::printf("\nsymbolic C ⊑ D on figure-1: %s, min delay %d "
              "(matches the explicit STG result)\n",
              sym.implies() ? "holds" : "fails",
              sym.min_delay_for_implication(8));
}

namespace {

void BM_SymbolicMachineBuild(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymbolicMachine(n));
  }
}
BENCHMARK(BM_SymbolicMachineBuild)->Arg(12)->Arg(20)->Arg(28);

void BM_SymbolicDelayedStates(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  for (auto _ : state) {
    SymbolicMachine sm(n);
    benchmark::DoNotOptimize(sm.count_states(sm.states_after_delay(2)));
  }
}
BENCHMARK(BM_SymbolicDelayedStates)->Arg(12)->Arg(20);

void BM_SymbolicImplicationFigure1(benchmark::State& state) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    SymbolicImplication sym(c, d);
    benchmark::DoNotOptimize(sym.implies());
  }
}
BENCHMARK(BM_SymbolicImplicationFigure1);

void BM_BddIteThroughput(benchmark::State& state) {
  BddManager m(24);
  Rng rng(5);
  // Random function soup to exercise ITE + unique table.
  std::vector<BddManager::Ref> pool;
  for (unsigned v = 0; v < 24; ++v) pool.push_back(m.var(v));
  for (auto _ : state) {
    const auto a = pool[rng.index(pool.size())];
    const auto b = pool[rng.index(pool.size())];
    const auto c = pool[rng.index(pool.size())];
    pool.push_back(m.ite(a, b, c));
    if (pool.size() > 4096) pool.resize(24);
    benchmark::DoNotOptimize(pool.back());
  }
  state.counters["nodes"] = static_cast<double>(m.num_nodes());
}
BENCHMARK(BM_BddIteThroughput);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
