// Substrate benchmark: the symbolic (BDD) engine — partitioned-vs-monolithic
// image computation on workloads where the monolithic transition relation
// stops scaling, plus delayed-design state sets and state-machine
// implication at latch counts where explicit 2^L enumeration is infeasible.
//
// The report times reachable() and states_after_delay(2) through BOTH image
// paths per workload, cross-checks that the two agree on every state count
// before writing anything, and emits machine-readable BENCH_symbolic.json
// (path overridable via RTV_BENCH_JSON). The binary re-reads the file and
// schema-checks it, exiting non-zero when the partitioned path fails the
// contract: the `random L=28` workload must complete within the default
// node limit (no capacity row) at a >= 3x wall-time speedup over the
// monolithic path. Workloads that do blow a limit are reported honestly —
// both CapacityError and ResourceExhausted rows (a budgeted run degrades,
// it does not abort the whole report). RTV_BENCH_SMOKE=1 drops the stretch
// workloads so CI runs the report in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/moves.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

constexpr double kRequiredSpeedup = 3.0;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Netlist wide_random(unsigned latches, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_outputs = 4;
  opt.num_gates = latches * 3;
  opt.num_latches = latches;
  opt.max_fanin = 2;
  opt.latch_after_gate_probability = 0.0;
  return random_netlist(opt, rng);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One image path's measurements on one workload. status is "ok",
/// "capacity" (CapacityError) or "exhausted" (ResourceExhausted); on a
/// non-ok status the timings are honest lower bounds (time to blowup).
struct PathResult {
  std::string status = "ok";
  double reach_ms = 0.0;
  double reach_states = -1.0;
  double delay2_ms = 0.0;
  double delay2_states = -1.0;
  std::size_t peak_nodes = 0;
};

struct WorkloadRow {
  std::string name;
  std::size_t latches = 0;
  std::size_t clusters = 0;
  PathResult partitioned;
  PathResult monolithic;
  double speedup_reach = 0.0;  ///< monolithic / partitioned reach time
  std::string cross_check = "skipped";  ///< "ok" when both paths completed
};

/// Runs reachable-from-zero and delay-2 through one image path. The whole
/// machine is rebuilt per path so peak node counts are attributable.
PathResult run_path(const Netlist& n, bool monolithic) {
  PathResult r;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    SymbolicMachine sm(n);
    const BddManager::Ref init = sm.state_cube(Bits(n.num_latches(), 0));
    const BddManager::Ref reach =
        monolithic ? sm.reachable_monolithic(init) : sm.reachable(init);
    r.reach_ms = ms_since(t0);
    r.reach_states = sm.count_states(reach);

    const auto t1 = std::chrono::steady_clock::now();
    BddManager::Ref delayed = sm.all_states();
    if (monolithic) {
      for (unsigned k = 0; k < 2; ++k) {
        const BddManager::Ref next = sm.image_monolithic(delayed);
        if (next == delayed) break;
        delayed = next;
      }
    } else {
      delayed = sm.states_after_delay(2);
    }
    r.delay2_ms = ms_since(t1);
    r.delay2_states = sm.count_states(delayed);
    r.peak_nodes = sm.manager().num_nodes();
  } catch (const CapacityError&) {
    // Random dense logic is BDD-hostile without variable reordering; report
    // the blowup honestly (elapsed time is a lower bound) instead of hiding
    // the workload or aborting the report.
    r.status = "capacity";
    r.reach_ms = ms_since(t0);
  } catch (const ResourceExhausted&) {
    // A budgeted run (e.g. under the fault-injection harness) degrades to a
    // labeled partial row, never an aborted report.
    r.status = "exhausted";
    r.reach_ms = ms_since(t0);
  }
  return r;
}

WorkloadRow run_workload(const std::string& name, const Netlist& n) {
  WorkloadRow row;
  row.name = name;
  row.latches = n.num_latches();
  {
    SymbolicMachine sm(n);
    row.clusters = sm.partition().size();
  }
  row.partitioned = run_path(n, /*monolithic=*/false);
  row.monolithic = run_path(n, /*monolithic=*/true);
  if (row.partitioned.status == "ok" && row.partitioned.reach_ms > 0.0) {
    row.speedup_reach = row.monolithic.reach_ms / row.partitioned.reach_ms;
  }
  if (row.partitioned.status == "ok" && row.monolithic.status == "ok") {
    const bool agree =
        row.partitioned.reach_states == row.monolithic.reach_states &&
        row.partitioned.delay2_states == row.monolithic.delay2_states;
    row.cross_check = agree ? "ok" : "MISMATCH";
  }
  return row;
}

std::vector<WorkloadRow> run_report(bool smoke) {
  std::vector<WorkloadRow> rows;
  rows.push_back(run_workload("s27", iscas_s27()));
  rows.push_back(run_workload("lfsr 24", lfsr(24, {0, 3, 5, 23})));
  rows.push_back(run_workload("random L=20", wide_random(20, 1)));
  rows.push_back(run_workload("random L=28", wide_random(28, 2)));
  if (!smoke) {
    // Stretch rows: the seed's monolithic path cannot finish these at all;
    // the partitioned path can (the monolithic column reports its blowup).
    rows.push_back(run_workload("random L=36", wide_random(36, 6)));
    rows.push_back(run_workload("random L=48", wide_random(48, 6)));
  }
  return rows;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_symbolic.json";
}

void render_path(std::ostringstream& os, const char* key,
                 const PathResult& r, const char* trailing) {
  os << "      \"" << key << "\": {\"status\": \"" << r.status
     << "\", \"reach_ms\": " << r.reach_ms
     << ", \"reach_states\": " << r.reach_states
     << ", \"delay2_ms\": " << r.delay2_ms
     << ", \"delay2_states\": " << r.delay2_states
     << ", \"peak_nodes\": " << r.peak_nodes << "}" << trailing << "\n";
}

std::string render_bench_json(const std::vector<WorkloadRow>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"symbolic_image\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"node_limit\": " << kDefaultBddNodeLimit << ",\n";
  os << "  \"required_speedup\": " << kRequiredSpeedup << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WorkloadRow& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"latches\": " << r.latches << ",\n";
    os << "      \"clusters\": " << r.clusters << ",\n";
    render_path(os, "partitioned", r.partitioned, ",");
    render_path(os, "monolithic", r.monolithic, ",");
    os << "      \"speedup_reach\": " << r.speedup_reach << ",\n";
    os << "      \"cross_check\": \"" << r.cross_check << "\"\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys,
/// balanced nesting, no cross-check mismatch anywhere, and the L=28
/// contract — partitioned status ok with speedup_reach >= 3.
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"", "\"node_limit\"",
        "\"required_speedup\"", "\"workloads\"", "\"name\"", "\"latches\"",
        "\"clusters\"", "\"partitioned\"", "\"monolithic\"", "\"status\"",
        "\"reach_ms\"", "\"reach_states\"", "\"delay2_ms\"",
        "\"delay2_states\"", "\"peak_nodes\"", "\"speedup_reach\"",
        "\"cross_check\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  if (text.find("\"MISMATCH\"") != std::string::npos) {
    return "partitioned and monolithic image paths disagree on a state set";
  }
  const std::size_t l28 = text.find("\"random L=28\"");
  if (l28 == std::string::npos) return "missing the random L=28 workload";
  const std::size_t row_end = text.find("\"cross_check\"", l28);
  const std::string row = text.substr(l28, row_end - l28);
  const std::size_t part = row.find("\"partitioned\"");
  if (part == std::string::npos) return "L=28 row lacks a partitioned path";
  if (row.find("\"status\": \"ok\"", part) != row.find("\"status\"", part)) {
    return "random L=28 did not complete within the default node limit";
  }
  const std::size_t sp = row.find("\"speedup_reach\": ");
  if (sp == std::string::npos) return "L=28 row lacks speedup_reach";
  const double speedup = std::atof(row.c_str() + sp + 17);
  if (speedup < kRequiredSpeedup) {
    return "random L=28 partitioned speedup " + std::to_string(speedup) +
           "x is below the required " + std::to_string(kRequiredSpeedup) +
           "x";
  }
  return "";
}

void emit_bench_json(const std::vector<WorkloadRow>& rows) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

void print_path(const char* label, const PathResult& r) {
  if (r.status == "ok") {
    std::printf("  %-12s reach %9.2f ms (%10.4g states)  delay-2 %9.2f ms "
                "(%10.4g states)  peak nodes %zu\n",
                label, r.reach_ms, r.reach_states, r.delay2_ms,
                r.delay2_states, r.peak_nodes);
  } else {
    std::printf("  %-12s %s after %.2f ms (honest lower bound)\n", label,
                r.status.c_str(), r.reach_ms);
  }
}

}  // namespace

void report() {
  bench::heading("substrate / symbolic engine",
                 "partitioned vs monolithic image computation — BDD "
                 "reachability where 2^L enumeration stops scaling");
  const std::vector<WorkloadRow> rows = run_report(smoke_mode());
  for (const WorkloadRow& r : rows) {
    std::printf("%s (%zu latches, %zu clusters)\n", r.name.c_str(),
                r.latches, r.clusters);
    print_path("partitioned", r.partitioned);
    print_path("monolithic", r.monolithic);
    if (r.speedup_reach > 0.0) {
      std::printf("  %-12s %.1fx on reachable()  [cross-check %s]\n",
                  "speedup", r.speedup_reach, r.cross_check.c_str());
    }
  }

  // Symbolic implication on the paper pair.
  SymbolicImplication sym(figure1_retimed(), figure1_original());
  std::printf("\nsymbolic C ⊑ D on figure-1: %s, min delay %d "
              "(matches the explicit STG result)\n",
              sym.implies() ? "holds" : "fails",
              sym.min_delay_for_implication(8));

  emit_bench_json(rows);
}

namespace {

void BM_SymbolicMachineBuild(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymbolicMachine(n));
  }
}
BENCHMARK(BM_SymbolicMachineBuild)->Arg(12)->Arg(20)->Arg(28);

void BM_ImagePartitioned(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  SymbolicMachine sm(n);
  const BddManager::Ref zero = sm.state_cube(Bits(n.num_latches(), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.image(zero));
  }
  state.counters["nodes"] = static_cast<double>(sm.manager().num_nodes());
}
BENCHMARK(BM_ImagePartitioned)->Arg(12)->Arg(20)->Arg(28);

void BM_ImageMonolithic(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  SymbolicMachine sm(n);
  sm.transition();  // build outside the timed loop
  const BddManager::Ref zero = sm.state_cube(Bits(n.num_latches(), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.image_monolithic(zero));
  }
  state.counters["nodes"] = static_cast<double>(sm.manager().num_nodes());
}
BENCHMARK(BM_ImageMonolithic)->Arg(12)->Arg(20);

void BM_SymbolicDelayedStates(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  for (auto _ : state) {
    SymbolicMachine sm(n);
    benchmark::DoNotOptimize(sm.count_states(sm.states_after_delay(2)));
  }
}
BENCHMARK(BM_SymbolicDelayedStates)->Arg(12)->Arg(20);

void BM_SymbolicImplicationFigure1(benchmark::State& state) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    SymbolicImplication sym(c, d);
    benchmark::DoNotOptimize(sym.implies());
  }
}
BENCHMARK(BM_SymbolicImplicationFigure1);

void BM_BddIteThroughput(benchmark::State& state) {
  BddManager m(24);
  Rng rng(5);
  // Random function soup to exercise ITE + the open-addressed unique table.
  std::vector<BddManager::Ref> pool;
  for (unsigned v = 0; v < 24; ++v) pool.push_back(m.var(v));
  for (auto _ : state) {
    const auto a = pool[rng.index(pool.size())];
    const auto b = pool[rng.index(pool.size())];
    const auto c = pool[rng.index(pool.size())];
    pool.push_back(m.ite(a, b, c));
    if (pool.size() > 4096) pool.resize(24);
    benchmark::DoNotOptimize(pool.back());
  }
  state.counters["nodes"] = static_cast<double>(m.num_nodes());
  state.counters["op_hit_rate"] =
      static_cast<double>(m.op_cache_stats().hits) /
      static_cast<double>(m.op_cache_stats().lookups);
}
BENCHMARK(BM_BddIteThroughput);

void BM_AndExistsFused(benchmark::State& state) {
  // The relational-product kernel on its own: ∃x. f ∧ g vs the
  // materialise-then-quantify baseline (BM_AndThenExists).
  const Netlist n = wide_random(20, 4);
  SymbolicMachine sm(n);
  BddManager& m = sm.manager();
  const BddManager::Ref f = sm.transition();
  const BddManager::Ref g = sm.state_cube(Bits(n.num_latches(), 0));
  std::vector<unsigned> vars;
  for (unsigned i = 0; i < sm.num_latches(); ++i) {
    vars.push_back(sm.state_var(i));
  }
  const BddManager::Ref cube = m.make_cube(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.and_exists(f, g, cube));
  }
}
BENCHMARK(BM_AndExistsFused);

void BM_AndThenExists(benchmark::State& state) {
  const Netlist n = wide_random(20, 4);
  SymbolicMachine sm(n);
  BddManager& m = sm.manager();
  const BddManager::Ref f = sm.transition();
  const BddManager::Ref g = sm.state_cube(Bits(n.num_latches(), 0));
  std::vector<unsigned> vars;
  for (unsigned i = 0; i < sm.num_latches(); ++i) {
    vars.push_back(sm.state_var(i));
  }
  const BddManager::Ref cube = m.make_cube(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.exists_cube(m.bdd_and(f, g), cube));
  }
}
BENCHMARK(BM_AndThenExists);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
