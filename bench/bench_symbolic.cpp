// Substrate benchmark: the symbolic (BDD) engine — partitioned-vs-monolithic
// image computation on workloads where the monolithic transition relation
// stops scaling, plus delayed-design state sets and state-machine
// implication at latch counts where explicit 2^L enumeration is infeasible.
//
// The report times reachable() and states_after_delay(2) through BOTH image
// paths per workload, cross-checks that the two agree on every state count
// before writing anything, and emits machine-readable BENCH_symbolic.json
// (path overridable via RTV_BENCH_JSON). The binary re-reads the file and
// schema-checks it, exiting non-zero when the partitioned path fails the
// contract: the `random L=28` workload must complete within the default
// node limit (no capacity row) at a >= 3x wall-time speedup over the
// monolithic path. Workloads that do blow a limit are reported honestly —
// both CapacityError and ResourceExhausted rows (a budgeted run degrades,
// it does not abort the whole report). RTV_BENCH_SMOKE=1 drops the stretch
// workloads so CI runs the report in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bdd/cls_bdd.hpp"
#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/moves.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

constexpr double kRequiredSpeedup = 3.0;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Netlist wide_random(unsigned latches, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_outputs = 4;
  opt.num_gates = latches * 3;
  opt.num_latches = latches;
  opt.max_fanin = 2;
  opt.latch_after_gate_probability = 0.0;
  return random_netlist(opt, rng);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One image path's measurements on one workload. status is "ok",
/// "capacity" (CapacityError) or "exhausted" (ResourceExhausted); on a
/// non-ok status the timings are honest lower bounds (time to blowup).
struct PathResult {
  std::string status = "ok";
  double reach_ms = 0.0;
  double reach_states = -1.0;
  double delay2_ms = 0.0;
  double delay2_states = -1.0;
  std::size_t peak_nodes = 0;
};

struct WorkloadRow {
  std::string name;
  std::size_t latches = 0;
  std::size_t clusters = 0;
  PathResult partitioned;
  PathResult monolithic;
  double speedup_reach = 0.0;  ///< monolithic / partitioned reach time
  std::string cross_check = "skipped";  ///< "ok" when both paths completed
};

/// Runs reachable-from-zero and delay-2 through one image path. The whole
/// machine is rebuilt per path so peak node counts are attributable.
PathResult run_path(const Netlist& n, bool monolithic) {
  PathResult r;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    SymbolicMachine sm(n);
    const BddManager::Ref init = sm.state_cube(Bits(n.num_latches(), 0));
    const BddManager::Ref reach =
        monolithic ? sm.reachable_monolithic(init) : sm.reachable(init);
    r.reach_ms = ms_since(t0);
    r.reach_states = sm.count_states(reach);

    const auto t1 = std::chrono::steady_clock::now();
    BddManager::Ref delayed = sm.all_states();
    if (monolithic) {
      for (unsigned k = 0; k < 2; ++k) {
        const BddManager::Ref next = sm.image_monolithic(delayed);
        if (next == delayed) break;
        delayed = next;
      }
    } else {
      delayed = sm.states_after_delay(2);
    }
    r.delay2_ms = ms_since(t1);
    r.delay2_states = sm.count_states(delayed);
    r.peak_nodes = sm.manager().num_nodes();
  } catch (const CapacityError&) {
    // Random dense logic is BDD-hostile without variable reordering; report
    // the blowup honestly (elapsed time is a lower bound) instead of hiding
    // the workload or aborting the report.
    r.status = "capacity";
    r.reach_ms = ms_since(t0);
  } catch (const ResourceExhausted&) {
    // A budgeted run (e.g. under the fault-injection harness) degrades to a
    // labeled partial row, never an aborted report.
    r.status = "exhausted";
    r.reach_ms = ms_since(t0);
  }
  return r;
}

WorkloadRow run_workload(const std::string& name, const Netlist& n) {
  WorkloadRow row;
  row.name = name;
  row.latches = n.num_latches();
  {
    SymbolicMachine sm(n);
    row.clusters = sm.partition().size();
  }
  row.partitioned = run_path(n, /*monolithic=*/false);
  row.monolithic = run_path(n, /*monolithic=*/true);
  if (row.partitioned.status == "ok" && row.partitioned.reach_ms > 0.0) {
    row.speedup_reach = row.monolithic.reach_ms / row.partitioned.reach_ms;
  }
  if (row.partitioned.status == "ok" && row.monolithic.status == "ok") {
    const bool agree =
        row.partitioned.reach_states == row.monolithic.reach_states &&
        row.partitioned.delay2_states == row.monolithic.delay2_states;
    row.cross_check = agree ? "ok" : "MISMATCH";
  }
  return row;
}

std::vector<WorkloadRow> run_report(bool smoke) {
  std::vector<WorkloadRow> rows;
  rows.push_back(run_workload("s27", iscas_s27()));
  rows.push_back(run_workload("lfsr 24", lfsr(24, {0, 3, 5, 23})));
  rows.push_back(run_workload("random L=20", wide_random(20, 1)));
  rows.push_back(run_workload("random L=28", wide_random(28, 2)));
  if (!smoke) {
    // Stretch rows: the seed's monolithic path cannot finish these at all;
    // the partitioned path can (the monolithic column reports its blowup).
    rows.push_back(run_workload("random L=36", wide_random(36, 6)));
    rows.push_back(run_workload("random L=48", wide_random(48, 6)));
  }
  return rows;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_symbolic.json";
}

void render_path(std::ostringstream& os, const char* key,
                 const PathResult& r, const char* trailing) {
  os << "      \"" << key << "\": {\"status\": \"" << r.status
     << "\", \"reach_ms\": " << r.reach_ms
     << ", \"reach_states\": " << r.reach_states
     << ", \"delay2_ms\": " << r.delay2_ms
     << ", \"delay2_states\": " << r.delay2_states
     << ", \"peak_nodes\": " << r.peak_nodes << "}" << trailing << "\n";
}

std::string render_bench_json(const std::vector<WorkloadRow>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"symbolic_image\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"node_limit\": " << kDefaultBddNodeLimit << ",\n";
  os << "  \"required_speedup\": " << kRequiredSpeedup << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WorkloadRow& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"latches\": " << r.latches << ",\n";
    os << "      \"clusters\": " << r.clusters << ",\n";
    render_path(os, "partitioned", r.partitioned, ",");
    render_path(os, "monolithic", r.monolithic, ",");
    os << "      \"speedup_reach\": " << r.speedup_reach << ",\n";
    os << "      \"cross_check\": \"" << r.cross_check << "\"\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys,
/// balanced nesting, no cross-check mismatch anywhere, and the L=28
/// contract — partitioned status ok with speedup_reach >= 3.
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"", "\"node_limit\"",
        "\"required_speedup\"", "\"workloads\"", "\"name\"", "\"latches\"",
        "\"clusters\"", "\"partitioned\"", "\"monolithic\"", "\"status\"",
        "\"reach_ms\"", "\"reach_states\"", "\"delay2_ms\"",
        "\"delay2_states\"", "\"peak_nodes\"", "\"speedup_reach\"",
        "\"cross_check\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  if (text.find("\"MISMATCH\"") != std::string::npos) {
    return "partitioned and monolithic image paths disagree on a state set";
  }
  const std::size_t l28 = text.find("\"random L=28\"");
  if (l28 == std::string::npos) return "missing the random L=28 workload";
  const std::size_t row_end = text.find("\"cross_check\"", l28);
  const std::string row = text.substr(l28, row_end - l28);
  const std::size_t part = row.find("\"partitioned\"");
  if (part == std::string::npos) return "L=28 row lacks a partitioned path";
  if (row.find("\"status\": \"ok\"", part) != row.find("\"status\"", part)) {
    return "random L=28 did not complete within the default node limit";
  }
  const std::size_t sp = row.find("\"speedup_reach\": ");
  if (sp == std::string::npos) return "L=28 row lacks speedup_reach";
  const double speedup = std::atof(row.c_str() + sp + 17);
  if (speedup < kRequiredSpeedup) {
    return "random L=28 partitioned speedup " + std::to_string(speedup) +
           "x is below the required " + std::to_string(kRequiredSpeedup) +
           "x";
  }
  return "";
}

void emit_bench_json(const std::vector<WorkloadRow>& rows) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

// ---------------------------------------------------------------------------
// Dynamic reordering + GC report (BENCH_reorder.json)
//
// Three contracts, all self-validated before the binary exits:
//   * unlock — a pair-matcher CLS-equivalence whose interleaving-hostile
//     input order exhausts kDefaultBddNodeLimit under the fixed order must
//     be PROVEN once on-pressure sifting + GC are enabled;
//   * peak_reduction — peak live nodes on the L=36 partitioned-reachability
//     workload must drop >= 2x with GC + reordering on (same state count);
//   * fast_path — having GC + reordering available but idle (trigger at the
//     node limit) must cost <= 10% (+2 ms grace) on the L=28 fast path; the
//     on-pressure time is reported honestly but not gated, since a sift's
//     fixed cost dominates a millisecond-scale workload.

constexpr double kRequiredPeakReduction = 2.0;
constexpr double kMaxFastPathOverhead = 1.10;
constexpr double kFastPathGraceMs = 2.0;

/// OR_i (x_i AND x_{i+n}) with the pairs separated by n in the input
/// order — linear-sized interleaved, ~2^n under the construction order.
/// `reversed` flips the OR association so the two CLS sides differ
/// structurally while staying equivalent.
Netlist pair_matcher(unsigned n, bool reversed) {
  Netlist nl;
  std::vector<NodeId> ins;
  ins.reserve(2 * n);
  for (unsigned i = 0; i < 2 * n; ++i) {
    ins.push_back(nl.add_input("x" + std::to_string(i)));
  }
  const NodeId out = nl.add_output("match");
  std::vector<NodeId> ands;
  ands.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    const NodeId g = nl.add_gate(CellKind::kAnd, 2, "p" + std::to_string(i));
    nl.connect(PortRef(ins[i], 0), PinRef(g, 0));
    nl.connect(PortRef(ins[i + n], 0), PinRef(g, 1));
    ands.push_back(g);
  }
  const NodeId any = nl.add_gate(CellKind::kOr, n, "any");
  for (unsigned i = 0; i < n; ++i) {
    nl.connect(PortRef(ands[reversed ? n - 1 - i : i], 0), PinRef(any, i));
  }
  nl.connect(PortRef(any, 0), PinRef(out, 0));
  nl.check_valid(/*require_junction_normal=*/true);
  return nl;
}

struct ReorderReport {
  // unlock
  std::string fixed_verdict;
  double fixed_ms = 0.0;
  std::string tuned_verdict;
  double tuned_ms = 0.0;
  std::uint64_t tuned_gc_runs = 0;
  std::uint64_t tuned_reorder_runs = 0;
  std::size_t tuned_peak_live = 0;
  // peak_reduction (L=36)
  std::size_t base_peak_nodes = 0;
  std::size_t tuned_peak_live_nodes = 0;
  double peak_reduction = 0.0;
  std::string states_cross_check = "MISMATCH";
  // fast_path (L=28)
  double base_ms = 0.0;
  double idle_ms = 0.0;
  double pressure_ms = 0.0;
  double overhead = 0.0;
};

double reach_l_workload(const Netlist& n, const ReorderOptions& reorder,
                        bool gc, double* states,
                        BddManager::EngineStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  SymbolicMachine sm(n, kDefaultBddNodeLimit, nullptr, kDefaultClusterNodeCap,
                     reorder, gc);
  BddManager& m = sm.manager();
  const BddHandle init = m.protect(sm.state_cube(Bits(n.num_latches(), 0)));
  const BddHandle reach = m.protect(sm.reachable(init.get()));
  const double elapsed = ms_since(t0);
  *states = sm.count_states(reach.get());
  *stats = m.stats();
  return elapsed;
}

ReorderReport run_reorder_report() {
  ReorderReport r;

  // unlock: fixed order exhausts, on-pressure sifting + GC proves.
  const Netlist a = pair_matcher(24, false);
  const Netlist b = pair_matcher(24, true);
  {
    auto t0 = std::chrono::steady_clock::now();
    const BddClsOutcome fixed = bdd_cls_equivalence(a, b, BddEquivOptions{});
    r.fixed_ms = ms_since(t0);
    r.fixed_verdict = to_string(fixed.verdict);
    BddEquivOptions on;
    on.gc = true;
    on.reorder.mode = ReorderMode::kOnPressure;
    t0 = std::chrono::steady_clock::now();
    const BddClsOutcome tuned = bdd_cls_equivalence(a, b, on);
    r.tuned_ms = ms_since(t0);
    r.tuned_verdict = to_string(tuned.verdict);
    r.tuned_gc_runs = tuned.engine.gc_runs;
    r.tuned_reorder_runs = tuned.engine.reorder_runs;
    r.tuned_peak_live = tuned.engine.peak_live_nodes;
  }

  // peak_reduction: L=36 partitioned reachability, arena peak (no GC ever
  // shrinks it) vs peak LIVE set under collection + sifting.
  {
    const Netlist n36 = wide_random(36, 6);
    double base_states = 0.0, tuned_states = 0.0;
    BddManager::EngineStats base_stats, tuned_stats;
    reach_l_workload(n36, ReorderOptions{}, false, &base_states, &base_stats);
    ReorderOptions on;
    on.mode = ReorderMode::kOnPressure;
    reach_l_workload(n36, on, true, &tuned_states, &tuned_stats);
    r.base_peak_nodes = base_stats.peak_nodes;
    r.tuned_peak_live_nodes = tuned_stats.peak_live_nodes;
    if (r.tuned_peak_live_nodes > 0) {
      r.peak_reduction = static_cast<double>(r.base_peak_nodes) /
                         static_cast<double>(r.tuned_peak_live_nodes);
    }
    r.states_cross_check = base_states == tuned_states ? "ok" : "MISMATCH";
  }

  // fast_path: best-of-3 per configuration; "idle" has both features on
  // with the pressure trigger parked at the node limit.
  {
    const Netlist n28 = wide_random(28, 2);
    ReorderOptions idle;
    idle.mode = ReorderMode::kOnPressure;
    idle.trigger_nodes = kDefaultBddNodeLimit;
    ReorderOptions pressure;
    pressure.mode = ReorderMode::kOnPressure;
    double states = 0.0;
    BddManager::EngineStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      const auto best = [](double* slot, double value) {
        if (*slot == 0.0 || value < *slot) *slot = value;
      };
      best(&r.base_ms,
           reach_l_workload(n28, ReorderOptions{}, false, &states, &stats));
      best(&r.idle_ms, reach_l_workload(n28, idle, true, &states, &stats));
      best(&r.pressure_ms,
           reach_l_workload(n28, pressure, true, &states, &stats));
    }
    r.overhead = r.idle_ms / r.base_ms;
  }
  return r;
}

std::string reorder_json_path() {
  const char* v = std::getenv("RTV_BENCH_REORDER_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_reorder.json";
}

std::string render_reorder_json(const ReorderReport& r) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"bdd_reorder\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"node_limit\": " << kDefaultBddNodeLimit << ",\n";
  os << "  \"unlock\": {\n";
  os << "    \"workload\": \"pair_matcher n=24 cls-equivalence\",\n";
  os << "    \"fixed\": {\"verdict\": \"" << r.fixed_verdict
     << "\", \"ms\": " << r.fixed_ms << "},\n";
  os << "    \"tuned\": {\"verdict\": \"" << r.tuned_verdict
     << "\", \"ms\": " << r.tuned_ms << ", \"gc_runs\": " << r.tuned_gc_runs
     << ", \"reorder_runs\": " << r.tuned_reorder_runs
     << ", \"peak_live_nodes\": " << r.tuned_peak_live << "}\n";
  os << "  },\n";
  os << "  \"peak_reduction\": {\n";
  os << "    \"workload\": \"random L=36 partitioned reachability\",\n";
  os << "    \"base_peak_nodes\": " << r.base_peak_nodes << ",\n";
  os << "    \"tuned_peak_live_nodes\": " << r.tuned_peak_live_nodes << ",\n";
  os << "    \"reduction\": " << r.peak_reduction << ",\n";
  os << "    \"required\": " << kRequiredPeakReduction << ",\n";
  os << "    \"states_cross_check\": \"" << r.states_cross_check << "\"\n";
  os << "  },\n";
  os << "  \"fast_path\": {\n";
  os << "    \"workload\": \"random L=28 partitioned reachability\",\n";
  os << "    \"base_ms\": " << r.base_ms << ",\n";
  os << "    \"idle_ms\": " << r.idle_ms << ",\n";
  os << "    \"pressure_ms\": " << r.pressure_ms << ",\n";
  os << "    \"overhead\": " << r.overhead << ",\n";
  os << "    \"max_overhead\": " << kMaxFastPathOverhead << ",\n";
  os << "    \"grace_ms\": " << kFastPathGraceMs << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

std::string validate_reorder_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"node_limit\"",
        "\"unlock\"", "\"fixed\"", "\"tuned\"", "\"verdict\"",
        "\"peak_reduction\"", "\"base_peak_nodes\"",
        "\"tuned_peak_live_nodes\"", "\"reduction\"",
        "\"states_cross_check\"", "\"fast_path\"", "\"base_ms\"",
        "\"idle_ms\"", "\"pressure_ms\"", "\"overhead\"", "\"gc_runs\"",
        "\"reorder_runs\"", "\"peak_live_nodes\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  const std::size_t fixed = text.find("\"fixed\"");
  const std::size_t tuned = text.find("\"tuned\"");
  if (text.find("\"verdict\": \"exhausted\"", fixed) != fixed + 10) {
    return "fixed-order run did not exhaust the node limit";
  }
  if (text.find("\"verdict\": \"proven\"", tuned) != tuned + 10) {
    return "reordering+GC run was not proven";
  }
  const std::size_t red = text.find("\"reduction\": ");
  if (red == std::string::npos) return "missing reduction value";
  if (std::atof(text.c_str() + red + 13) < kRequiredPeakReduction) {
    return "L=36 peak live node reduction is below the required " +
           std::to_string(kRequiredPeakReduction) + "x";
  }
  if (text.find("\"states_cross_check\": \"ok\"") == std::string::npos) {
    return "reordered reachability disagrees with the default engine";
  }
  const std::size_t base = text.find("\"base_ms\": ");
  const std::size_t idle = text.find("\"idle_ms\": ");
  if (base == std::string::npos || idle == std::string::npos) {
    return "missing fast-path timings";
  }
  const double base_ms = std::atof(text.c_str() + base + 11);
  const double idle_ms = std::atof(text.c_str() + idle + 11);
  if (idle_ms > base_ms * kMaxFastPathOverhead + kFastPathGraceMs) {
    return "idle GC+reordering overhead " + std::to_string(idle_ms) +
           " ms exceeds " + std::to_string(kMaxFastPathOverhead) + "x of " +
           std::to_string(base_ms) + " ms (+2 ms grace) on the L=28 fast "
           "path";
  }
  return "";
}

void emit_reorder_json(const ReorderReport& r) {
  const std::string path = reorder_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_reorder_json(r);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_reorder_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

void print_path(const char* label, const PathResult& r) {
  if (r.status == "ok") {
    std::printf("  %-12s reach %9.2f ms (%10.4g states)  delay-2 %9.2f ms "
                "(%10.4g states)  peak nodes %zu\n",
                label, r.reach_ms, r.reach_states, r.delay2_ms,
                r.delay2_states, r.peak_nodes);
  } else {
    std::printf("  %-12s %s after %.2f ms (honest lower bound)\n", label,
                r.status.c_str(), r.reach_ms);
  }
}

}  // namespace

bool reorder_only_mode() {
  const char* v = std::getenv("RTV_BENCH_REORDER_ONLY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

void report_reorder() {
  bench::heading("substrate / BDD reordering + GC",
                 "on-pressure sifting unlocks order-hostile workloads; "
                 "collection bounds peak live nodes; idle features stay free");
  const ReorderReport r = run_reorder_report();
  std::printf("unlock (pair_matcher n=24 cls-equivalence):\n");
  std::printf("  fixed order   %-10s %9.1f ms\n", r.fixed_verdict.c_str(),
              r.fixed_ms);
  std::printf("  reorder+gc    %-10s %9.1f ms  (%llu collections, %llu "
              "sifts, peak live %zu)\n",
              r.tuned_verdict.c_str(), r.tuned_ms,
              static_cast<unsigned long long>(r.tuned_gc_runs),
              static_cast<unsigned long long>(r.tuned_reorder_runs),
              r.tuned_peak_live);
  std::printf("peak live nodes (random L=36 partitioned reachability):\n");
  std::printf("  base arena %zu -> gc+reorder %zu  (%.1fx reduction, "
              "states %s)\n",
              r.base_peak_nodes, r.tuned_peak_live_nodes, r.peak_reduction,
              r.states_cross_check.c_str());
  std::printf("fast path (random L=28, best of 3):\n");
  std::printf("  base %.1f ms, features idle %.1f ms (%.2fx), on-pressure "
              "%.1f ms\n",
              r.base_ms, r.idle_ms, r.overhead, r.pressure_ms);
  emit_reorder_json(r);
}

void report() {
  if (!reorder_only_mode()) {
    bench::heading("substrate / symbolic engine",
                   "partitioned vs monolithic image computation — BDD "
                   "reachability where 2^L enumeration stops scaling");
    const std::vector<WorkloadRow> rows = run_report(smoke_mode());
    for (const WorkloadRow& r : rows) {
      std::printf("%s (%zu latches, %zu clusters)\n", r.name.c_str(),
                  r.latches, r.clusters);
      print_path("partitioned", r.partitioned);
      print_path("monolithic", r.monolithic);
      if (r.speedup_reach > 0.0) {
        std::printf("  %-12s %.1fx on reachable()  [cross-check %s]\n",
                    "speedup", r.speedup_reach, r.cross_check.c_str());
      }
    }

    // Symbolic implication on the paper pair.
    SymbolicImplication sym(figure1_retimed(), figure1_original());
    std::printf("\nsymbolic C ⊑ D on figure-1: %s, min delay %d "
                "(matches the explicit STG result)\n",
                sym.implies() ? "holds" : "fails",
                sym.min_delay_for_implication(8));

    emit_bench_json(rows);
  }

  report_reorder();
}

namespace {

void BM_SymbolicMachineBuild(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymbolicMachine(n));
  }
}
BENCHMARK(BM_SymbolicMachineBuild)->Arg(12)->Arg(20)->Arg(28);

void BM_ImagePartitioned(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  SymbolicMachine sm(n);
  const BddManager::Ref zero = sm.state_cube(Bits(n.num_latches(), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.image(zero));
  }
  state.counters["nodes"] = static_cast<double>(sm.manager().num_nodes());
}
BENCHMARK(BM_ImagePartitioned)->Arg(12)->Arg(20)->Arg(28);

void BM_ImageMonolithic(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  SymbolicMachine sm(n);
  sm.transition();  // build outside the timed loop
  const BddManager::Ref zero = sm.state_cube(Bits(n.num_latches(), 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sm.image_monolithic(zero));
  }
  state.counters["nodes"] = static_cast<double>(sm.manager().num_nodes());
}
BENCHMARK(BM_ImageMonolithic)->Arg(12)->Arg(20);

void BM_SymbolicDelayedStates(benchmark::State& state) {
  const Netlist n = wide_random(static_cast<unsigned>(state.range(0)), 4);
  for (auto _ : state) {
    SymbolicMachine sm(n);
    benchmark::DoNotOptimize(sm.count_states(sm.states_after_delay(2)));
  }
}
BENCHMARK(BM_SymbolicDelayedStates)->Arg(12)->Arg(20);

void BM_SymbolicImplicationFigure1(benchmark::State& state) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  for (auto _ : state) {
    SymbolicImplication sym(c, d);
    benchmark::DoNotOptimize(sym.implies());
  }
}
BENCHMARK(BM_SymbolicImplicationFigure1);

void BM_BddIteThroughput(benchmark::State& state) {
  BddManager m(24);
  Rng rng(5);
  // Random function soup to exercise ITE + the open-addressed unique table.
  std::vector<BddManager::Ref> pool;
  for (unsigned v = 0; v < 24; ++v) pool.push_back(m.var(v));
  for (auto _ : state) {
    const auto a = pool[rng.index(pool.size())];
    const auto b = pool[rng.index(pool.size())];
    const auto c = pool[rng.index(pool.size())];
    pool.push_back(m.ite(a, b, c));
    if (pool.size() > 4096) pool.resize(24);
    benchmark::DoNotOptimize(pool.back());
  }
  state.counters["nodes"] = static_cast<double>(m.num_nodes());
  state.counters["op_hit_rate"] =
      static_cast<double>(m.op_cache_stats().hits) /
      static_cast<double>(m.op_cache_stats().lookups);
}
BENCHMARK(BM_BddIteThroughput);

void BM_AndExistsFused(benchmark::State& state) {
  // The relational-product kernel on its own: ∃x. f ∧ g vs the
  // materialise-then-quantify baseline (BM_AndThenExists).
  const Netlist n = wide_random(20, 4);
  SymbolicMachine sm(n);
  BddManager& m = sm.manager();
  const BddManager::Ref f = sm.transition();
  const BddManager::Ref g = sm.state_cube(Bits(n.num_latches(), 0));
  std::vector<unsigned> vars;
  for (unsigned i = 0; i < sm.num_latches(); ++i) {
    vars.push_back(sm.state_var(i));
  }
  const BddManager::Ref cube = m.make_cube(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.and_exists(f, g, cube));
  }
}
BENCHMARK(BM_AndExistsFused);

void BM_AndThenExists(benchmark::State& state) {
  const Netlist n = wide_random(20, 4);
  SymbolicMachine sm(n);
  BddManager& m = sm.manager();
  const BddManager::Ref f = sm.transition();
  const BddManager::Ref g = sm.state_cube(Bits(n.num_latches(), 0));
  std::vector<unsigned> vars;
  for (unsigned i = 0; i < sm.num_latches(); ++i) {
    vars.push_back(sm.state_var(i));
  }
  const BddManager::Ref cube = m.make_cube(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.exists_cube(m.bdd_and(f, g), cube));
  }
}
BENCHMARK(BM_AndThenExists);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
