// Experiment: `rtv serve` throughput and latency under concurrent clients.
//
// The report drives 1..64 concurrent clients through a real Unix-domain
// socket (the production transport, not handle_line), each client running
// a closed loop over a fixed lint/simulate/faultsim mix, and records
// jobs/sec plus p50/p95/p99 latency per sweep point. Two contracts are
// asserted, and the binary exits non-zero when either fails or when the
// BENCH_serve.json it writes does not match its own schema:
//
//  1. Correctness under concurrency — every request id is answered exactly
//     once, every response validates against the wire schema with ok:true,
//     and each job type's result JSON is byte-identical across all clients
//     and sweep points (the service is deterministic).
//  2. The design cache earns its keep — a warm server (default cache)
//     must beat a cold server (cache_bytes=0, every job re-parses) by at
//     least kMinCacheSpeedup on a parse-dominated lint workload.
//
// Under RTV_BENCH_SMOKE=1 the sweep shrinks (CI smoke); RTV_BENCH_JSON
// overrides the report path.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/datapath.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace {

using namespace rtv;
using namespace rtv::serve;
using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_serve.json";
}

/// Warm must beat cold by at least this factor on the cache workload.
constexpr double kMinCacheSpeedup = 1.3;

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "bench_serve_throughput: CONTRACT VIOLATION: %s\n",
               what.c_str());
  std::exit(1);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// A minimal NDJSON client over a Unix-domain socket: one blocking
// connection, send_line / recv_line with an internal read buffer.

class LineClient {
 public:
  explicit LineClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(fd_ >= 0, "client socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check(socket_path.size() < sizeof(addr.sun_path),
          "socket path too long for sockaddr_un");
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    // The server binds before clients start, but give the accept loop a
    // moment under load anyway.
    int rc = -1;
    for (int attempt = 0; attempt < 100; ++attempt) {
      rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      if (rc == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    check(rc == 0, "client connect() failed: " +
                       std::string(std::strerror(errno)));
  }

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void send_line(const std::string& frame) {
    std::string wire = frame;
    wire.push_back('\n');
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      check(n > 0, "client send() failed");
      off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      check(n > 0, "client recv() failed (connection closed early?)");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string unique_socket_path(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::ostringstream os;
  os << ((tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp") << "/rtv-bench-"
     << tag << "-" << ::getpid() << ".sock";
  return os.str();
}

// ---------------------------------------------------------------------------
// Workload frames.

std::string design_field(const std::string& rnl) {
  return "\"design\": \"" + json_escape(rnl) + "\"";
}

/// '.'-separated input vectors, alternating all-0 / all-1, `cycles` long.
std::string alternating_inputs(std::size_t width, unsigned cycles) {
  std::string out;
  for (unsigned t = 0; t < cycles; ++t) {
    if (t != 0) out.push_back('.');
    out.append(width, (t % 2 == 0) ? '0' : '1');
  }
  return out;
}

struct JobKind {
  std::string type;
  std::string options;  // rendered JSON object, "" for none
};

std::string frame_for(const JobKind& kind, const std::string& id,
                      const std::string& design_json) {
  std::string f = "{\"rtv_serve\": 1, \"id\": \"" + id + "\", \"type\": \"" +
                  kind.type + "\", " + design_json;
  if (!kind.options.empty()) f += ", \"options\": " + kind.options;
  f += "}";
  return f;
}

struct ParsedResponse {
  bool ok = false;
  std::string id;
  std::string type;
  std::string verdict;
  std::string result_json;  // canonical write_json of "result"
};

ParsedResponse parse_and_validate(const std::string& line) {
  const JsonValue doc = parse_json(line);
  const std::string problem = validate_response(doc);
  check(problem.empty(), "response failed wire validation: " + problem +
                             " in: " + line);
  ParsedResponse out;
  out.ok = doc.find("ok")->as_bool();
  out.id = doc.find("id")->as_string();
  if (const JsonValue* t = doc.find("type")) out.type = t->as_string();
  if (const JsonValue* stats = doc.find("stats")) {
    if (const JsonValue* v = stats->find("verdict")) {
      out.verdict = v->as_string();
    }
  }
  if (const JsonValue* result = doc.find("result")) {
    out.result_json = write_json(*result);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sweep: N closed-loop clients over the socket.

struct SweepPoint {
  unsigned clients = 0;
  std::uint64_t jobs = 0;
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SweepPoint run_sweep_point(const std::string& socket_path,
                           const std::string& design_json,
                           const std::vector<JobKind>& mix, unsigned clients,
                           unsigned jobs_per_client,
                           std::map<std::string, std::string>* results_by_type) {
  std::vector<std::thread> threads;
  std::vector<double> all_latencies;
  std::mutex merge_mutex;
  std::set<std::string> answered_ids;

  const auto sweep_start = Clock::now();
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client(socket_path);
      std::vector<double> latencies;
      std::vector<ParsedResponse> responses;
      latencies.reserve(jobs_per_client);
      for (unsigned i = 0; i < jobs_per_client; ++i) {
        const JobKind& kind = mix[(c + i) % mix.size()];
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        const auto start = Clock::now();
        client.send_line(frame_for(kind, id, design_json));
        const std::string line = client.recv_line();
        latencies.push_back(ms_since(start));
        ParsedResponse r = parse_and_validate(line);
        check(r.ok, "job " + id + " failed: " + line);
        check(r.id == id, "closed-loop client got id " + r.id +
                              " while waiting for " + id);
        responses.push_back(std::move(r));
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      all_latencies.insert(all_latencies.end(), latencies.begin(),
                           latencies.end());
      for (ParsedResponse& r : responses) {
        check(answered_ids.insert(r.id).second,
              "id " + r.id + " answered more than once");
        // Determinism: one canonical result per job type, across every
        // client and every sweep point.
        auto [it, inserted] =
            results_by_type->emplace(r.type, r.result_json);
        check(inserted || it->second == r.result_json,
              "nondeterministic " + r.type + " result: " + r.result_json +
                  " vs " + it->second);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SweepPoint point;
  point.clients = clients;
  point.jobs = std::uint64_t{clients} * jobs_per_client;
  point.wall_ms = ms_since(sweep_start);
  point.jobs_per_sec =
      static_cast<double>(point.jobs) / (point.wall_ms / 1000.0);
  std::sort(all_latencies.begin(), all_latencies.end());
  point.p50_ms = percentile(all_latencies, 0.50);
  point.p95_ms = percentile(all_latencies, 0.95);
  point.p99_ms = percentile(all_latencies, 0.99);
  check(answered_ids.size() == point.jobs,
        "expected " + std::to_string(point.jobs) + " answered ids, got " +
            std::to_string(answered_ids.size()));
  return point;
}

// ---------------------------------------------------------------------------
// Cache contract: warm server vs cold (cache_bytes=0) on a big design.

struct CacheResult {
  std::uint64_t jobs = 0;
  double warm_jobs_per_sec = 0.0;
  double cold_jobs_per_sec = 0.0;
  double speedup = 0.0;
};

double lint_loop_jobs_per_sec(Server& server, const std::string& design_json,
                              unsigned jobs) {
  // handle_line: same dispatch/handler path as the socket, minus transport
  // noise — exactly what isolates parse cost.
  const auto start = Clock::now();
  for (unsigned i = 0; i < jobs; ++i) {
    const std::string response = server.handle_line(frame_for(
        JobKind{"lint", ""}, "lint-" + std::to_string(i), design_json));
    const ParsedResponse r = parse_and_validate(response);
    check(r.ok, "cache-workload lint failed: " + response);
  }
  return static_cast<double>(jobs) / (ms_since(start) / 1000.0);
}

CacheResult run_cache_contrast(bool smoke) {
  const Netlist big = controller_datapath(smoke ? 24 : 96);
  const std::string design_json = design_field(write_rnl(big));
  const unsigned jobs = smoke ? 24 : 200;

  ServeOptions warm_opts;
  warm_opts.threads = 1;  // serial: measure per-job cost, not scheduling
  Server warm(warm_opts);

  ServeOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.cache_bytes = 0;  // retention disabled: every job re-parses
  Server cold(cold_opts);

  CacheResult out;
  out.jobs = jobs;
  // Warm-up both servers once so the warm one holds the design and
  // first-touch allocation noise hits neither timed loop.
  lint_loop_jobs_per_sec(warm, design_json, 2);
  lint_loop_jobs_per_sec(cold, design_json, 2);
  out.warm_jobs_per_sec = lint_loop_jobs_per_sec(warm, design_json, jobs);
  out.cold_jobs_per_sec = lint_loop_jobs_per_sec(cold, design_json, jobs);
  out.speedup = out.warm_jobs_per_sec / out.cold_jobs_per_sec;

  const ServeStats warm_stats = warm.stats();
  check(warm_stats.cache.entries == 1,
        "warm server should hold exactly the one design");
  check(warm_stats.cache.hits >= jobs,
        "warm server should have served the timed loop from cache");
  const ServeStats cold_stats = cold.stats();
  check(cold_stats.cache.hits == 0 && cold_stats.cache.entries == 0,
        "cold server must not retain or hit anything");
  return out;
}

// ---------------------------------------------------------------------------
// Report.

std::string render_bench_json(const std::vector<SweepPoint>& sweep,
                              const CacheResult& cache) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"serve_throughput\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    os << "    {\"clients\": " << p.clients << ", \"jobs\": " << p.jobs
       << ", \"jobs_per_sec\": " << p.jobs_per_sec
       << ", \"p50_ms\": " << p.p50_ms << ", \"p95_ms\": " << p.p95_ms
       << ", \"p99_ms\": " << p.p99_ms << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"cache\": {\n";
  os << "    \"jobs\": " << cache.jobs << ",\n";
  os << "    \"warm_jobs_per_sec\": " << cache.warm_jobs_per_sec << ",\n";
  os << "    \"cold_jobs_per_sec\": " << cache.cold_jobs_per_sec << ",\n";
  os << "    \"speedup\": " << cache.speedup << ",\n";
  os << "    \"min_speedup\": " << kMinCacheSpeedup << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

void validate_bench_json(const std::string& path,
                         const std::vector<SweepPoint>& sweep) {
  std::ifstream in(path);
  check(in.good(), "cannot re-read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buf.str());
  } catch (const Error& e) {
    fail(path + " is not valid JSON: " + e.what());
  }
  const JsonValue* name = doc.find("benchmark");
  check(name != nullptr && name->is_string() &&
            name->as_string() == "serve_throughput",
        "benchmark name mismatch in " + path);
  const JsonValue* points = doc.find("sweep");
  check(points != nullptr && points->is_array() &&
            points->as_array().size() == sweep.size(),
        "sweep array mismatch in " + path);
  for (const JsonValue& p : points->as_array()) {
    for (const char* key :
         {"clients", "jobs", "jobs_per_sec", "p50_ms", "p95_ms", "p99_ms"}) {
      const JsonValue* v = p.find(key);
      check(v != nullptr && v->is_number() && v->as_number() >= 0.0,
            std::string("sweep point missing numeric \"") + key + "\"");
    }
    check(p.find("jobs_per_sec")->as_number() > 0.0,
          "jobs_per_sec must be positive");
  }
  const JsonValue* cache = doc.find("cache");
  check(cache != nullptr && cache->is_object(), "missing cache object");
  const double speedup = cache->find("speedup")->as_number();
  const double min_speedup = cache->find("min_speedup")->as_number();
  check(speedup >= min_speedup,
        "cache speedup " + std::to_string(speedup) +
            " below contract minimum " + std::to_string(min_speedup));
}

void report() {
  const bool smoke = smoke_mode();
  bench::heading("serve_throughput",
                 "rtv serve: concurrent-client throughput and cache value");

  // The sweep design: a small controller+datapath, cheap enough that the
  // mix is dominated by dispatch + the service machinery, not one giant
  // analysis (latency percentiles then actually describe the service).
  const Netlist design = controller_datapath(smoke ? 4 : 8);
  const std::string design_json = design_field(write_rnl(design));
  const std::string inputs =
      alternating_inputs(design.primary_inputs().size(), 4);
  const std::vector<JobKind> mix = {
      {"lint", ""},
      {"simulate", "{\"inputs\": \"" + inputs + "\", \"mode\": \"cls\"}"},
      {"faultsim", "{\"tests\": 4, \"cycles\": 4, \"seed\": 7}"},
  };

  ServeOptions options;
  options.threads = smoke ? 2 : 4;
  options.max_inflight = 64;
  Server server(options);
  const std::string socket_path = unique_socket_path("serve");
  std::thread server_thread([&] { server.serve_socket(socket_path); });

  const std::vector<unsigned> client_counts =
      smoke ? std::vector<unsigned>{1, 2, 4}
            : std::vector<unsigned>{1, 2, 4, 8, 16, 32, 64};
  const unsigned jobs_per_client = smoke ? 9 : 30;

  std::vector<SweepPoint> sweep;
  std::map<std::string, std::string> results_by_type;
  for (unsigned clients : client_counts) {
    sweep.push_back(run_sweep_point(socket_path, design_json, mix, clients,
                                    jobs_per_client, &results_by_type));
    const SweepPoint& p = sweep.back();
    std::ostringstream os;
    os.precision(4);
    os << "  clients=" << p.clients << "  jobs=" << p.jobs
       << "  jobs/s=" << p.jobs_per_sec << "  p50=" << p.p50_ms
       << "ms  p95=" << p.p95_ms << "ms  p99=" << p.p99_ms << "ms";
    bench::line(os.str());
  }
  check(results_by_type.size() == mix.size(),
        "expected one canonical result per job type");
  const auto faultsim = results_by_type.find("faultsim");
  check(faultsim != results_by_type.end() &&
            faultsim->second.find("\"detected\"") != std::string::npos,
        "faultsim result should carry a detection count");

  {
    LineClient control(socket_path);
    control.send_line(
        "{\"rtv_serve\": 1, \"id\": \"bye\", \"type\": \"shutdown\"}");
    const ParsedResponse r = parse_and_validate(control.recv_line());
    check(r.ok, "shutdown request failed");
  }
  server_thread.join();
  const ServeStats final_stats = server.stats();
  check(final_stats.jobs_failed == 0, "no job may fail in this workload");

  bench::line("");
  const CacheResult cache = run_cache_contrast(smoke);
  {
    std::ostringstream os;
    os.precision(4);
    os << "  cache: warm=" << cache.warm_jobs_per_sec
       << " jobs/s  cold=" << cache.cold_jobs_per_sec
       << " jobs/s  speedup=" << cache.speedup << "x  (contract >= "
       << kMinCacheSpeedup << "x)";
    bench::line(os.str());
  }
  check(cache.speedup >= kMinCacheSpeedup,
        "warm cache speedup " + std::to_string(cache.speedup) +
            "x below the " + std::to_string(kMinCacheSpeedup) +
            "x contract");

  const std::string path = bench_json_path();
  {
    std::ofstream out(path);
    check(out.good(), "cannot write " + path);
    out << render_bench_json(sweep, cache);
  }
  validate_bench_json(path, sweep);
  bench::line("  wrote " + path + " (schema validated)");
}

// ---------------------------------------------------------------------------
// google-benchmark timings: the in-process dispatch path, per job type.

void BM_handle_line_lint(benchmark::State& state) {
  ServeOptions options;
  options.threads = 1;
  Server server(options);
  const std::string design_json =
      design_field(write_rnl(controller_datapath(8)));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(frame_for(
        JobKind{"lint", ""}, "b" + std::to_string(i++), design_json)));
  }
}
BENCHMARK(BM_handle_line_lint);

void BM_handle_line_simulate(benchmark::State& state) {
  ServeOptions options;
  options.threads = 1;
  Server server(options);
  const Netlist n = controller_datapath(8);
  const std::string design_json = design_field(write_rnl(n));
  const std::string opts = "{\"inputs\": \"" +
                           alternating_inputs(n.primary_inputs().size(), 8) +
                           "\", \"mode\": \"cls\"}";
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(frame_for(
        JobKind{"simulate", opts}, "b" + std::to_string(i++), design_json)));
  }
}
BENCHMARK(BM_handle_line_simulate);

}  // namespace

RTV_BENCH_MAIN(report)
