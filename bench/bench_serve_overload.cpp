// Experiment: `rtv serve` behaviour past saturation — does goodput hold
// and does latency stay honest when the offered load exceeds capacity?
//
// The report drives an open-loop paced workload (clients send on a timer,
// they do not wait for responses) through a real Unix-domain socket at
// 1x, 2x and 4x the server's nominal capacity. Jobs are the deterministic
// chaos_spin_cooperative_ms simulate handler, so per-job service time is
// known and the measurement describes the admission machinery, not an
// analysis kernel. Contracts asserted (the binary exits non-zero when any
// fails, or when the BENCH_serve_overload.json it writes does not match
// its own schema):
//
//  1. Every request id is answered exactly once — as a schema-valid
//     success or a schema-valid "overloaded" rejection. Nothing is
//     dropped, nothing is answered twice, no client blocks forever.
//  2. Past saturation the server sheds: at >= 2x offered load the shed
//     count is positive (bounded queue, not unbounded latency).
//  3. Accepted jobs stay fast: p99 completion latency of successful jobs
//     stays under kMaxAcceptedP99Ms at every load point — the bounded
//     admission queue caps how long an accepted job can have waited.
//  4. Goodput does not collapse: successful jobs/sec at 4x load must be
//     at least kMinGoodputRatio of goodput at 1x.
//  5. The server stays observable: a "health" probe sent mid-flood at 4x
//     is answered inline in under kMaxHealthMs.
//
// Under RTV_BENCH_SMOKE=1 the pacing windows shrink (CI smoke);
// RTV_BENCH_JSON overrides the report path.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/paper_circuits.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace {

using namespace rtv;
using namespace rtv::serve;
using Clock = std::chrono::steady_clock;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_serve_overload.json";
}

/// Accepted-job p99 latency cap at every load point. Queue depth x
/// service time bounds the wait, so this is generous headroom for
/// scheduler noise, not a tuned number.
constexpr double kMaxAcceptedP99Ms = 250.0;
/// Goodput at 4x offered load must be at least this fraction of 1x.
constexpr double kMinGoodputRatio = 0.5;
/// A health probe mid-flood must answer within this.
constexpr double kMaxHealthMs = 1000.0;
/// Deterministic per-job service time (cooperative chaos spin).
constexpr std::uint64_t kServiceMs = 5;

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "bench_serve_overload: CONTRACT VIOLATION: %s\n",
               what.c_str());
  std::exit(1);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double index = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(index);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = index - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// ---------------------------------------------------------------------------
// Socket client (same minimal NDJSON idiom as bench_serve_throughput).

class LineClient {
 public:
  explicit LineClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    check(fd_ >= 0, "client socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    check(socket_path.size() < sizeof(addr.sun_path),
          "socket path too long for sockaddr_un");
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    int rc = -1;
    for (int attempt = 0; attempt < 100; ++attempt) {
      rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      if (rc == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    check(rc == 0,
          "client connect() failed: " + std::string(std::strerror(errno)));
  }

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  void send_line(const std::string& frame) {
    std::string wire = frame;
    wire.push_back('\n');
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      check(n > 0, "client send() failed");
      off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      check(n > 0, "client recv() failed (connection closed early?)");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string unique_socket_path(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::ostringstream os;
  os << ((tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp")
     << "/rtv-bench-" << tag << "-" << ::getpid() << ".sock";
  return os.str();
}

// ---------------------------------------------------------------------------
// Workload.

std::string spin_frame(const std::string& id, const std::string& design) {
  std::ostringstream os;
  os << "{\"rtv_serve\": 1, \"id\": \"" << id
     << "\", \"type\": \"simulate\", \"design\": \"" << design
     << "\", \"options\": {\"chaos_spin_cooperative_ms\": " << kServiceMs
     << "}}";
  return os.str();
}

/// One measured load point: paced open-loop offered load at `multiple`
/// times nominal capacity, split across `clients` connections.
struct LoadPoint {
  double multiple = 0.0;
  std::uint64_t offered = 0;
  double offered_per_sec = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  double wall_ms = 0.0;
  double goodput_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double health_ms = 0.0;  ///< mid-flood probe; 0 when not probed
};

LoadPoint run_load_point(const std::string& socket_path,
                         const std::string& design, double capacity_per_sec,
                         double multiple, double window_sec,
                         bool probe_health) {
  const unsigned clients = 4;
  const double rate = capacity_per_sec * multiple;
  const std::uint64_t per_client = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(rate * window_sec /
                                    static_cast<double>(clients)));
  const double interval_ms =
      1000.0 * static_cast<double>(clients) / rate;

  std::mutex merge_mutex;
  std::vector<double> ok_latencies;
  std::uint64_t ok_count = 0;
  std::uint64_t shed_count = 0;

  const auto point_start = Clock::now();
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client(socket_path);
      std::map<std::string, Clock::time_point> sent_at;
      // Paced sender: one frame per interval, never waiting for answers —
      // offered load is a property of the clock, not of server speed.
      std::thread sender([&] {
        auto next = Clock::now();
        for (std::uint64_t j = 0; j < per_client; ++j) {
          const std::string id =
              "m" + std::to_string(static_cast<int>(multiple * 100)) + "-c" +
              std::to_string(c) + "-" + std::to_string(j);
          {
            std::lock_guard<std::mutex> lk(merge_mutex);
            sent_at.emplace(id, Clock::now());
          }
          client.send_line(spin_frame(id, design));
          next += std::chrono::microseconds(
              static_cast<std::int64_t>(interval_ms * 1000.0));
          std::this_thread::sleep_until(next);
        }
      });

      std::vector<double> latencies;
      std::uint64_t oks = 0;
      std::uint64_t sheds = 0;
      std::map<std::string, int> seen;
      for (std::uint64_t j = 0; j < per_client; ++j) {
        const std::string line = client.recv_line();
        const JsonValue doc = parse_json(line);
        const std::string problem = validate_response(doc);
        check(problem.empty(),
              "response failed wire validation: " + problem + " in: " + line);
        const std::string id = doc.find("id")->as_string();
        check(++seen[id] == 1, "duplicate response for id " + id);
        Clock::time_point t0;
        {
          std::lock_guard<std::mutex> lk(merge_mutex);
          const auto it = sent_at.find(id);
          check(it != sent_at.end(), "response for an id never sent: " + id);
          t0 = it->second;
        }
        if (doc.find("ok")->as_bool()) {
          ++oks;
          latencies.push_back(ms_since(t0));
        } else {
          const JsonValue* error = doc.find("error");
          check(error->find("code")->as_string() == "overloaded",
                "rejection must be overloaded, got: " + line);
          check(error->find("retry_after_ms") != nullptr,
                "overloaded rejection must carry retry_after_ms: " + line);
          ++sheds;
        }
      }
      sender.join();
      std::lock_guard<std::mutex> lk(merge_mutex);
      ok_count += oks;
      shed_count += sheds;
      ok_latencies.insert(ok_latencies.end(), latencies.begin(),
                          latencies.end());
    });
  }

  double health_ms = 0.0;
  if (probe_health) {
    // Mid-flood liveness probe on its own connection: answered inline on
    // the reader thread, so saturation must not delay it.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(window_sec * 300.0)));
    LineClient probe(socket_path);
    const auto t0 = Clock::now();
    probe.send_line("{\"rtv_serve\": 1, \"id\": \"hp\", \"type\": \"health\"}");
    const JsonValue doc = parse_json(probe.recv_line());
    check(validate_response(doc).empty() && doc.find("ok")->as_bool(),
          "health probe failed mid-flood");
    health_ms = ms_since(t0);
    check(health_ms < kMaxHealthMs,
          "health probe took " + std::to_string(health_ms) + "ms mid-flood");
  }
  for (std::thread& t : threads) t.join();

  LoadPoint point;
  point.multiple = multiple;
  point.offered = std::uint64_t{clients} * per_client;
  point.wall_ms = ms_since(point_start);
  point.offered_per_sec =
      static_cast<double>(point.offered) / (point.wall_ms / 1000.0);
  point.ok = ok_count;
  point.shed = shed_count;
  point.goodput_per_sec =
      static_cast<double>(ok_count) / (point.wall_ms / 1000.0);
  std::sort(ok_latencies.begin(), ok_latencies.end());
  point.p50_ms = percentile(ok_latencies, 0.50);
  point.p99_ms = percentile(ok_latencies, 0.99);
  point.health_ms = health_ms;
  check(point.ok + point.shed == point.offered,
        "answered " + std::to_string(point.ok + point.shed) + " of " +
            std::to_string(point.offered) + " offered jobs");
  return point;
}

// ---------------------------------------------------------------------------
// Report.

std::string render_bench_json(const std::vector<LoadPoint>& points,
                              double goodput_ratio) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"serve_overload\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"service_ms\": " << kServiceMs << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    os << "    {\"load_multiple\": " << p.multiple
       << ", \"offered\": " << p.offered
       << ", \"offered_per_sec\": " << p.offered_per_sec
       << ", \"ok\": " << p.ok << ", \"shed\": " << p.shed
       << ", \"goodput_per_sec\": " << p.goodput_per_sec
       << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
       << ", \"health_ms\": " << p.health_ms << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"contracts\": {\n";
  os << "    \"max_accepted_p99_ms\": " << kMaxAcceptedP99Ms << ",\n";
  os << "    \"min_goodput_ratio\": " << kMinGoodputRatio << ",\n";
  os << "    \"goodput_ratio_4x\": " << goodput_ratio << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

void validate_bench_json(const std::string& path, std::size_t n_points) {
  std::ifstream in(path);
  check(in.good(), "cannot re-read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  try {
    doc = parse_json(buf.str());
  } catch (const Error& e) {
    fail(path + " is not valid JSON: " + e.what());
  }
  const JsonValue* name = doc.find("benchmark");
  check(name != nullptr && name->is_string() &&
            name->as_string() == "serve_overload",
        "benchmark name mismatch in " + path);
  const JsonValue* points = doc.find("points");
  check(points != nullptr && points->is_array() &&
            points->as_array().size() == n_points,
        "points array mismatch in " + path);
  for (const JsonValue& p : points->as_array()) {
    for (const char* key :
         {"load_multiple", "offered", "offered_per_sec", "ok", "shed",
          "goodput_per_sec", "p50_ms", "p99_ms", "health_ms"}) {
      const JsonValue* v = p.find(key);
      check(v != nullptr && v->is_number() && v->as_number() >= 0.0,
            std::string("load point missing numeric \"") + key + "\"");
    }
    check(p.find("goodput_per_sec")->as_number() > 0.0,
          "goodput must be positive at every load point");
    check(p.find("p99_ms")->as_number() <= kMaxAcceptedP99Ms,
          "accepted-job p99 above contract in " + path);
  }
  const JsonValue* contracts = doc.find("contracts");
  check(contracts != nullptr && contracts->is_object(),
        "missing contracts object");
  check(contracts->find("goodput_ratio_4x")->as_number() >=
            contracts->find("min_goodput_ratio")->as_number(),
        "goodput ratio below contract minimum in " + path);
}

void report() {
  const bool smoke = smoke_mode();
  bench::heading("serve_overload",
                 "rtv serve: load shedding and goodput past saturation");

  ServeOptions options;
  options.threads = 4;
  options.max_inflight = 2;
  options.admission_queue = 4;
  options.chaos_hooks = true;  // deterministic kServiceMs spin jobs
  Server server(options);
  const std::string socket_path = unique_socket_path("overload");
  std::thread server_thread([&] { server.serve_socket(socket_path); });

  // Nominal capacity: slots / service time. The spin job sleeps in 1ms
  // slices, so real service time runs slightly over kServiceMs — using the
  // nominal value keeps "1x" a little above true capacity, which is
  // exactly the regime admission control is for.
  const double capacity_per_sec =
      1000.0 / static_cast<double>(kServiceMs) * options.max_inflight;
  const double window_sec = smoke ? 1.0 : 2.5;
  const std::string design = json_escape(write_rnl(figure1_original()));

  std::vector<LoadPoint> points;
  for (const double multiple : {1.0, 2.0, 4.0}) {
    points.push_back(run_load_point(socket_path, design, capacity_per_sec,
                                    multiple, window_sec,
                                    /*probe_health=*/multiple == 4.0));
    const LoadPoint& p = points.back();
    std::ostringstream os;
    os.precision(4);
    os << "  load=" << p.multiple << "x  offered=" << p.offered << " ("
       << p.offered_per_sec << "/s)  ok=" << p.ok << "  shed=" << p.shed
       << "  goodput=" << p.goodput_per_sec << "/s  p50=" << p.p50_ms
       << "ms  p99=" << p.p99_ms << "ms";
    if (p.health_ms > 0.0) os << "  health=" << p.health_ms << "ms";
    bench::line(os.str());
  }

  {
    LineClient control(socket_path);
    control.send_line(
        "{\"rtv_serve\": 1, \"id\": \"bye\", \"type\": \"shutdown\"}");
    const JsonValue doc = parse_json(control.recv_line());
    check(validate_response(doc).empty() && doc.find("ok")->as_bool(),
          "shutdown request failed");
  }
  server_thread.join();

  // Contracts 2-4 (contract 1, exactly-once, is checked per point; 5,
  // health, inside the 4x point).
  for (const LoadPoint& p : points) {
    if (p.multiple >= 2.0) {
      check(p.shed > 0, "no shedding at " + std::to_string(p.multiple) +
                            "x load: the queue cannot be bounded");
    }
    check(p.p99_ms <= kMaxAcceptedP99Ms,
          "accepted-job p99 " + std::to_string(p.p99_ms) + "ms at " +
              std::to_string(p.multiple) + "x exceeds " +
              std::to_string(kMaxAcceptedP99Ms) + "ms");
  }
  const double goodput_ratio =
      points.back().goodput_per_sec / points.front().goodput_per_sec;
  check(goodput_ratio >= kMinGoodputRatio,
        "goodput collapsed past saturation: 4x/1x ratio " +
            std::to_string(goodput_ratio) + " < " +
            std::to_string(kMinGoodputRatio));

  const ServeStats stats = server.stats();
  check(stats.jobs_shed > 0, "server stats must record the shedding");
  check(stats.jobs_accepted == stats.jobs_done + stats.jobs_failed,
        "counter invariant broken at quiescence");

  const std::string path = bench_json_path();
  {
    std::ofstream out(path);
    check(out.good(), "cannot write " + path);
    out << render_bench_json(points, goodput_ratio);
  }
  validate_bench_json(path, points.size());
  bench::line("");
  bench::line("  wrote " + path + " (schema validated)");
}

}  // namespace

RTV_BENCH_MAIN(report)
