#pragma once
// Shared scaffolding for the experiment benchmarks: every bench binary
// first prints its paper-reproduction report (the table/figure data), then
// runs its google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace rtv::bench {

inline void heading(const std::string& experiment, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void line(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

}  // namespace rtv::bench

/// Defines main(): print the report, then run registered benchmarks.
#define RTV_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                     \
    report_fn();                                        \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    return 0;                                           \
  }
