// E11 — simulator substrate throughput: 2-valued vs 64-way bit-parallel vs
// conservative 3-valued (CLS) vs exact 3-valued, across circuit sizes.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "gen/random_circuits.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

Netlist workload(unsigned gates, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 8;
  opt.num_outputs = 8;
  opt.num_gates = gates;
  opt.num_latches = gates / 8;
  opt.latch_after_gate_probability = 0.25;
  return random_netlist(opt, rng);
}

}  // namespace

void report() {
  bench::heading("E11 / simulators",
                 "gate-evaluations per second by simulator kind");
  std::printf("%-10s %-10s %-14s %-14s %-14s\n", "gates", "latches",
              "binary Geval/s", "parallel64", "CLS Geval/s");
  for (const unsigned gates : {256u, 2048u, 16384u}) {
    const Netlist n = workload(gates, 42);
    const unsigned cycles = 2000;
    Rng rng(7);
    Bits in(n.primary_inputs().size());

    BinarySimulator bsim(n);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      benchmark::DoNotOptimize(bsim.step(in));
    }
    const double bin_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    ParallelBinarySimulator psim(n, 64);
    t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      psim.step_broadcast(in);
    }
    const double par_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    ClsSimulator csim(n);
    t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      benchmark::DoNotOptimize(csim.step(in));
    }
    const double cls_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const double evals = static_cast<double>(n.num_gates()) * cycles;
    std::printf("%-10zu %-10zu %-14.3g %-14.3g %-14.3g\n", n.num_gates(),
                n.num_latches(), evals / bin_s / 1e9,
                evals * 64 / par_s / 1e9, evals / cls_s / 1e9);
  }
  std::printf("\n(parallel64 counts 64 lanes of gate evaluations per step;\n"
              "exact 3-valued simulation is benchmarked below — its cost\n"
              "scales with the tracked power-up state-set size)\n");
}

namespace {

void BM_BinaryStep(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  BinarySimulator sim(n);
  const Bits in(n.primary_inputs().size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(n.num_gates()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BinaryStep)->Arg(256)->Arg(2048)->Arg(16384);

void BM_Parallel64Step(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  ParallelBinarySimulator sim(n, 64);
  const Bits in(n.primary_inputs().size(), 1);
  for (auto _ : state) {
    sim.step_broadcast(in);
  }
  state.counters["lane-gates/s"] = benchmark::Counter(
      static_cast<double>(n.num_gates()) * 64,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Parallel64Step)->Arg(256)->Arg(2048)->Arg(16384);

void BM_ClsStep(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  ClsSimulator sim(n);
  const Trits in(n.primary_inputs().size(), Trit::kX);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
}
BENCHMARK(BM_ClsStep)->Arg(256)->Arg(2048)->Arg(16384);

void BM_ExactStep(benchmark::State& state) {
  // Exact sim on a circuit with state.range(0) latches from all power-up.
  Rng rng(3);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_gates = 64;
  opt.num_latches = static_cast<unsigned>(state.range(0));
  opt.latch_after_gate_probability = 0.0;
  const Netlist n = random_netlist(opt, rng);
  ExactTernarySimulator sim(n);
  const Bits in(n.primary_inputs().size(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    sim.reset_all_powerup();
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.counters["states"] =
      static_cast<double>(std::uint64_t{1} << state.range(0));
}
BENCHMARK(BM_ExactStep)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
