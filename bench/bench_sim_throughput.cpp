// E11 — simulator substrate throughput: 2-valued vs 64-way bit-parallel vs
// conservative 3-valued (CLS, scalar and packed) vs exact 3-valued.
//
// Besides the console tables, the report emits a machine-readable
// BENCH_sim.json (path overridable via RTV_BENCH_JSON) recording
// scalar-vs-packed CLS pattern throughput so the performance trajectory is
// trackable across commits; docs/performance.md documents the methodology
// and the schema. RTV_BENCH_SMOKE=1 shrinks every workload so CI can run
// the report (and validate the JSON) in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "sim/packed_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"

namespace rtv {

namespace {

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

Netlist workload(unsigned gates, std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 8;
  opt.num_outputs = 8;
  opt.num_gates = gates;
  opt.num_latches = gates / 8;
  opt.latch_after_gate_probability = 0.25;
  return random_netlist(opt, rng);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- E11b: scalar vs packed CLS pattern throughput ------------------------

struct PackedRow {
  std::string name;
  std::size_t gates = 0;
  std::size_t latches = 0;
  unsigned patterns = 0;
  unsigned cycles = 0;
  double scalar_pps = 0.0;  ///< pattern-cycles per second, scalar ClsSimulator
  double packed_pps = 0.0;  ///< pattern-cycles per second, packed engine
  double speedup = 0.0;
};

/// Random ternary test set: `patterns` sequences of `cycles` input vectors.
std::vector<TritsSeq> make_patterns(const Netlist& n, unsigned patterns,
                                    unsigned cycles, Rng& rng) {
  std::vector<TritsSeq> tests(patterns);
  for (TritsSeq& seq : tests) {
    seq.reserve(cycles);
    for (unsigned t = 0; t < cycles; ++t) {
      Trits in(n.primary_inputs().size());
      for (Trit& v : in) v = static_cast<Trit>(rng.below(3));
      seq.push_back(std::move(in));
    }
  }
  return tests;
}

PackedRow measure_packed_vs_scalar(const std::string& name, const Netlist& n,
                                   unsigned patterns, unsigned cycles) {
  Rng rng(0xE11Bu);
  const std::vector<TritsSeq> tests = make_patterns(n, patterns, cycles, rng);
  const double work = static_cast<double>(patterns) * cycles;

  ClsSimulator scalar(n);
  auto t0 = std::chrono::steady_clock::now();
  for (const TritsSeq& test : tests) {
    scalar.reset_to_all_x();
    benchmark::DoNotOptimize(scalar.run(test));
  }
  const double scalar_s = seconds_since(t0);

  // The packed side delivers the same response data in PackedResponses'
  // flat storage (its native result form); materializing one nested vector
  // per lane-cycle would time the allocator, not the simulator.
  t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(packed_cls_responses(n, tests));
  const double packed_s = seconds_since(t0);

  PackedRow row;
  row.name = name;
  row.gates = n.num_gates();
  row.latches = n.num_latches();
  row.patterns = patterns;
  row.cycles = cycles;
  row.scalar_pps = work / scalar_s;
  row.packed_pps = work / packed_s;
  row.speedup = row.packed_pps / row.scalar_pps;
  return row;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_sim.json";
}

std::string render_bench_json(const std::vector<PackedRow>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"sim_throughput\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"lanes_per_word\": " << PackedTernarySimulator::kLanesPerWord
     << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PackedRow& r = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.name << "\",\n";
    os << "      \"gates\": " << r.gates << ",\n";
    os << "      \"latches\": " << r.latches << ",\n";
    os << "      \"patterns\": " << r.patterns << ",\n";
    os << "      \"cycles\": " << r.cycles << ",\n";
    os << "      \"scalar_cls_patterns_per_sec\": " << r.scalar_pps << ",\n";
    os << "      \"packed_cls_patterns_per_sec\": " << r.packed_pps << ",\n";
    os << "      \"speedup\": " << r.speedup << "\n";
    os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check of the emitted JSON (no JSON library in the image):
/// all required keys present, braces/brackets balanced, at least one
/// workload, every speedup positive. Returns an error description or "".
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"",
        "\"lanes_per_word\"", "\"workloads\"", "\"name\"", "\"gates\"",
        "\"latches\"", "\"patterns\"", "\"cycles\"",
        "\"scalar_cls_patterns_per_sec\"", "\"packed_cls_patterns_per_sec\"",
        "\"speedup\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  std::size_t pos = 0;
  unsigned speedups = 0;
  while ((pos = text.find("\"speedup\":", pos)) != std::string::npos) {
    pos += 10;
    const double v = std::strtod(text.c_str() + pos, nullptr);
    if (!(v > 0.0)) return "non-positive speedup";
    ++speedups;
  }
  if (speedups == 0) return "no workloads";
  return "";
}

void report_packed(std::vector<PackedRow>* rows_out) {
  bench::heading("E11b / packed CLS",
                 "pattern-cycles per second: scalar ClsSimulator vs the "
                 "64-lane packed ternary engine");
  const bool smoke = smoke_mode();
  const unsigned patterns = smoke ? 64 : 256;
  const unsigned cycles = smoke ? 4 : 64;

  std::vector<PackedRow> rows;
  rows.push_back(measure_packed_vs_scalar("shift64", shift_register(64),
                                          patterns, cycles));
  rows.push_back(measure_packed_vs_scalar("twisted64", twisted_ring(64),
                                          patterns, cycles));
  rows.push_back(measure_packed_vs_scalar(
      "adder32x4", pipelined_adder(32, 4), patterns, cycles));
  rows.push_back(measure_packed_vs_scalar(
      "ctrl_datapath64", controller_datapath(64), patterns, cycles));
  rows.push_back(measure_packed_vs_scalar(
      "random2048", workload(2048, 42), patterns, cycles));

  std::printf("%-16s %-8s %-8s %-14s %-14s %-8s\n", "workload", "gates",
              "latches", "scalar pat/s", "packed pat/s", "speedup");
  for (const PackedRow& r : rows) {
    std::printf("%-16s %-8zu %-8zu %-14.3g %-14.3g %-8.1f\n", r.name.c_str(),
                r.gates, r.latches, r.scalar_pps, r.packed_pps, r.speedup);
  }
  std::printf("(%u patterns x %u cycles per workload, random ternary "
              "inputs, all-X power-up on both engines)\n",
              patterns, cycles);
  *rows_out = std::move(rows);
}

void emit_bench_json(const std::vector<PackedRow>& rows) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(rows);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

}  // namespace

void report() {
  const bool smoke = smoke_mode();
  bench::heading("E11 / simulators",
                 "gate-evaluations per second by simulator kind");
  std::printf("%-10s %-10s %-14s %-14s %-14s\n", "gates", "latches",
              "binary Geval/s", "parallel64", "CLS Geval/s");
  const std::vector<unsigned> sizes =
      smoke ? std::vector<unsigned>{256u}
            : std::vector<unsigned>{256u, 2048u, 16384u};
  for (const unsigned gates : sizes) {
    const Netlist n = workload(gates, 42);
    const unsigned cycles = smoke ? 50 : 2000;
    Rng rng(7);
    Bits in(n.primary_inputs().size());

    BinarySimulator bsim(n);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      benchmark::DoNotOptimize(bsim.step(in));
    }
    const double bin_s = seconds_since(t0);

    ParallelBinarySimulator psim(n, 64);
    t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      psim.step_broadcast(in);
    }
    const double par_s = seconds_since(t0);

    ClsSimulator csim(n);
    t0 = std::chrono::steady_clock::now();
    for (unsigned t = 0; t < cycles; ++t) {
      for (auto& v : in) v = rng.coin();
      benchmark::DoNotOptimize(csim.step(in));
    }
    const double cls_s = seconds_since(t0);

    const double evals = static_cast<double>(n.num_gates()) * cycles;
    std::printf("%-10zu %-10zu %-14.3g %-14.3g %-14.3g\n", n.num_gates(),
                n.num_latches(), evals / bin_s / 1e9,
                evals * 64 / par_s / 1e9, evals / cls_s / 1e9);
  }
  std::printf("\n(parallel64 counts 64 lanes of gate evaluations per step;\n"
              "exact 3-valued simulation is benchmarked below — its cost\n"
              "scales with the tracked power-up state-set size)\n");

  std::vector<PackedRow> rows;
  report_packed(&rows);
  emit_bench_json(rows);
}

namespace {

void BM_BinaryStep(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  BinarySimulator sim(n);
  const Bits in(n.primary_inputs().size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(n.num_gates()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BinaryStep)->Arg(256)->Arg(2048)->Arg(16384);

void BM_Parallel64Step(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  ParallelBinarySimulator sim(n, 64);
  const Bits in(n.primary_inputs().size(), 1);
  for (auto _ : state) {
    sim.step_broadcast(in);
  }
  state.counters["lane-gates/s"] = benchmark::Counter(
      static_cast<double>(n.num_gates()) * 64,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Parallel64Step)->Arg(256)->Arg(2048)->Arg(16384);

void BM_ClsStep(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  ClsSimulator sim(n);
  const Trits in(n.primary_inputs().size(), Trit::kX);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(in));
  }
}
BENCHMARK(BM_ClsStep)->Arg(256)->Arg(2048)->Arg(16384);

void BM_PackedClsStep(benchmark::State& state) {
  const Netlist n = workload(static_cast<unsigned>(state.range(0)), 1);
  PackedTernarySimulator sim(n, 64);
  const Trits in(n.primary_inputs().size(), Trit::kX);
  for (auto _ : state) {
    sim.step_broadcast(in);
  }
  state.counters["lane-gates/s"] = benchmark::Counter(
      static_cast<double>(n.num_gates()) * 64,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PackedClsStep)->Arg(256)->Arg(2048)->Arg(16384);

void BM_ExactStep(benchmark::State& state) {
  // Exact sim on a circuit with state.range(0) latches from all power-up.
  Rng rng(3);
  RandomCircuitOptions opt;
  opt.num_inputs = 4;
  opt.num_gates = 64;
  opt.num_latches = static_cast<unsigned>(state.range(0));
  opt.latch_after_gate_probability = 0.0;
  const Netlist n = random_netlist(opt, rng);
  ExactTernarySimulator sim(n);
  const Bits in(n.primary_inputs().size(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    sim.reset_all_powerup();
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.step(in));
  }
  state.counters["states"] =
      static_cast<double>(std::uint64_t{1} << state.range(0));
}
BENCHMARK(BM_ExactStep)->Arg(8)->Arg(12)->Arg(16);

}  // namespace
}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
