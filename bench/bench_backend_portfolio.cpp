// Backend matrix — per-backend time-to-verdict on the two cone shapes that
// separate the engines, plus the portfolio contract:
//
//  * bdd_friendly: a pipelined ripple-carry adder against its min-area
//    retiming. The dual-rail encoding keeps narrow BDDs, so symbolic
//    reachability proves CLS equivalence quickly; SAT may or may not close
//    the proof by induction.
//  * multiplier_like: two pipelined array multipliers with different
//    register placement (and hence different latency) — CLS-distinguishable
//    with a shallow definitive counterexample. Multiplication is the
//    classic BDD killer: under a deliberately small node cap the BDD engine
//    exhausts, while SAT answers definitively within the default budget.
//
// The report asserts the engine-matrix contract before writing anything:
// on multiplier_like the capped BDD run must exhaust AND the SAT run must
// return a definitive (proven) verdict; on every workload the portfolio
// must return a conclusive verdict and finish within 1.2x the best single
// backend (plus a small absolute grace for thread-scheduling jitter on
// sub-millisecond runs). The machine-readable BENCH_backend.json (path
// overridable via RTV_BENCH_JSON) records per-backend timings, verdicts
// and the portfolio's decided_by; the binary re-reads and schema-checks
// the file, exiting non-zero on any violation. RTV_BENCH_SMOKE=1 shrinks
// the cones so CI can run the report in seconds.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/safety.hpp"
#include "core/verify.hpp"
#include "gen/datapath.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "util/budget.hpp"

namespace rtv {
namespace {

/// Absolute grace on top of the 1.2x bound: the portfolio pays two thread
/// spawns and a condition-variable handshake, which dominates only when
/// the best engine finishes in microseconds.
constexpr double kPortfolioGraceMs = 25.0;

bool smoke_mode() {
  const char* v = std::getenv("RTV_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct EngineRun {
  std::string backend;
  double ms = 0.0;
  std::string verdict;
  bool equivalent = false;
  std::string decided_by;
};

struct Workload {
  std::string name;
  std::vector<EngineRun> runs;
  double best_single_ms = 0.0;   ///< fastest *conclusive* single backend
  double portfolio_ms = 0.0;
  bool portfolio_conclusive = false;
  bool portfolio_within_bound = false;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

EngineRun run_engine(EquivalenceBackend backend, const Netlist& a,
                     const Netlist& b, const VerifyOptions& base) {
  VerifyOptions opt = base;
  opt.backend = backend;
  ResourceBudget budget((ResourceLimits()));  // default caps, no deadline
  const auto t0 = std::chrono::steady_clock::now();
  const ClsEquivalenceResult r = verify_cls_equivalence(a, b, opt, &budget);
  EngineRun run;
  run.ms = ms_since(t0);
  run.backend = to_string(backend);
  run.verdict = to_string(r.verdict);
  run.equivalent = r.equivalent;
  run.decided_by = to_string(r.decided_by);
  return run;
}

Workload run_workload(const std::string& name, const Netlist& a,
                      const Netlist& b, const VerifyOptions& base) {
  Workload w;
  w.name = name;
  for (const EquivalenceBackend backend :
       {EquivalenceBackend::kBdd, EquivalenceBackend::kSat,
        EquivalenceBackend::kPortfolio}) {
    w.runs.push_back(run_engine(backend, a, b, base));
  }
  for (const EngineRun& r : w.runs) {
    if (r.backend == std::string("portfolio")) {
      w.portfolio_ms = r.ms;
      w.portfolio_conclusive = r.verdict == std::string("proven");
    } else if (r.verdict == std::string("proven")) {
      if (w.best_single_ms == 0.0 || r.ms < w.best_single_ms) {
        w.best_single_ms = r.ms;
      }
    }
  }
  w.portfolio_within_bound =
      w.best_single_ms > 0.0 &&
      w.portfolio_ms <= 1.2 * w.best_single_ms + kPortfolioGraceMs;
  return w;
}

const EngineRun* find_run(const Workload& w, const char* backend) {
  for (const EngineRun& r : w.runs) {
    if (r.backend == std::string(backend)) return &r;
  }
  return nullptr;
}

std::vector<Workload> run_report(bool smoke) {
  std::vector<Workload> workloads;

  // BDD-friendly cone: adder vs its own min-area retiming (equivalent).
  {
    const Netlist adder = pipelined_adder(smoke ? 4 : 6, 2);
    const RetimeGraph g = RetimeGraph::from_netlist(adder);
    SequencedRetiming seq;
    analyze_lag_retiming(adder, g, min_area_retime(g).lag, &seq);
    workloads.push_back(
        run_workload("bdd_friendly", adder, seq.retimed, VerifyOptions{}));
  }

  // Multiplier-like cone: two register placements of the same array
  // multiplier with different latency (CLS-distinguishable). The BDD node
  // cap is deliberately small so symbolic reachability exhausts on the
  // multiplication structure; SAT must still answer definitively.
  {
    const unsigned bits = smoke ? 3 : 4;
    const Netlist fine = pipelined_multiplier(bits, smoke ? 1 : 2);
    const Netlist coarse = pipelined_multiplier(bits, bits);
    VerifyOptions base;
    base.bdd.node_limit = smoke ? 3000 : 20000;
    workloads.push_back(run_workload("multiplier_like", fine, coarse, base));
  }

  return workloads;
}

std::string bench_json_path() {
  const char* v = std::getenv("RTV_BENCH_JSON");
  return (v != nullptr && v[0] != '\0') ? v : "BENCH_backend.json";
}

std::string render_bench_json(const std::vector<Workload>& workloads) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"benchmark\": \"backend_portfolio\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"smoke\": " << (smoke_mode() ? "true" : "false") << ",\n";
  os << "  \"portfolio_grace_ms\": " << kPortfolioGraceMs << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    os << "    {\n";
    os << "      \"name\": \"" << w.name << "\",\n";
    os << "      \"backends\": [\n";
    for (std::size_t j = 0; j < w.runs.size(); ++j) {
      const EngineRun& r = w.runs[j];
      os << "        {\n";
      os << "          \"backend\": \"" << r.backend << "\",\n";
      os << "          \"ms\": " << r.ms << ",\n";
      os << "          \"verdict\": \"" << r.verdict << "\",\n";
      os << "          \"equivalent\": " << (r.equivalent ? "true" : "false")
         << ",\n";
      os << "          \"decided_by\": \"" << r.decided_by << "\"\n";
      os << "        }" << (j + 1 < w.runs.size() ? "," : "") << "\n";
    }
    os << "      ],\n";
    os << "      \"best_single_ms\": " << w.best_single_ms << ",\n";
    os << "      \"portfolio_ms\": " << w.portfolio_ms << ",\n";
    os << "      \"portfolio_conclusive\": "
       << (w.portfolio_conclusive ? "true" : "false") << ",\n";
    os << "      \"portfolio_within_bound\": "
       << (w.portfolio_within_bound ? "true" : "false") << "\n";
    os << "    }" << (i + 1 < workloads.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Minimal schema check (no JSON library in the image): required keys,
/// balanced nesting, and the portfolio contract flags true in every
/// workload.
std::string validate_bench_json(const std::string& text) {
  for (const char* key :
       {"\"benchmark\"", "\"schema_version\"", "\"smoke\"",
        "\"portfolio_grace_ms\"", "\"workloads\"", "\"name\"",
        "\"backends\"", "\"backend\"", "\"ms\"", "\"verdict\"",
        "\"equivalent\"", "\"decided_by\"", "\"best_single_ms\"",
        "\"portfolio_ms\"", "\"portfolio_conclusive\"",
        "\"portfolio_within_bound\""}) {
    if (text.find(key) == std::string::npos) {
      return std::string("missing key ") + key;
    }
  }
  long depth_brace = 0, depth_bracket = 0;
  for (char c : text) {
    if (c == '{') ++depth_brace;
    if (c == '}') --depth_brace;
    if (c == '[') ++depth_bracket;
    if (c == ']') --depth_bracket;
    if (depth_brace < 0 || depth_bracket < 0) return "unbalanced nesting";
  }
  if (depth_brace != 0 || depth_bracket != 0) return "unbalanced nesting";
  std::size_t pos = 0;
  unsigned entries = 0;
  for (const char* flag :
       {"\"portfolio_conclusive\":", "\"portfolio_within_bound\":"}) {
    pos = 0;
    entries = 0;
    const std::size_t len = std::string(flag).size();
    while ((pos = text.find(flag, pos)) != std::string::npos) {
      pos += len;
      if (text.compare(pos, 5, " true") != 0) {
        return std::string("contract flag false: ") + flag;
      }
      ++entries;
    }
    if (entries == 0) return std::string("no workloads carry ") + flag;
  }
  return "";
}

void emit_bench_json(const std::vector<Workload>& workloads) {
  const std::string path = bench_json_path();
  {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    f << render_bench_json(workloads);
  }
  std::ifstream f(path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string problem = validate_bench_json(buffer.str());
  if (!problem.empty()) {
    std::fprintf(stderr, "error: %s fails schema check: %s\n", path.c_str(),
                 problem.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (schema ok)\n", path.c_str());
}

}  // namespace

void report() {
  bench::heading("backend matrix / portfolio",
                 "per-backend time-to-verdict on BDD-friendly vs "
                 "multiplier-like cones; portfolio contract");
  const std::vector<Workload> workloads = run_report(smoke_mode());

  for (const Workload& w : workloads) {
    std::printf("\n%s:\n", w.name.c_str());
    std::printf("  %-10s %-12s %-10s %-12s %s\n", "backend", "ms", "verdict",
                "equivalent", "decided by");
    for (const EngineRun& r : w.runs) {
      std::printf("  %-10s %-12.2f %-10s %-12s %s\n", r.backend.c_str(), r.ms,
                  r.verdict.c_str(), r.equivalent ? "yes" : "no",
                  r.decided_by.c_str());
    }
    std::printf("  best single %.2f ms, portfolio %.2f ms (bound 1.2x + "
                "%.0f ms grace)\n",
                w.best_single_ms, w.portfolio_ms, kPortfolioGraceMs);
  }

  // ---- contract checks, loudly and before the JSON ----------------------
  for (const Workload& w : workloads) {
    if (!w.portfolio_conclusive) {
      std::fprintf(stderr, "error: portfolio inconclusive on %s\n",
                   w.name.c_str());
      std::exit(1);
    }
    if (!w.portfolio_within_bound) {
      std::fprintf(stderr,
                   "error: portfolio %.2f ms exceeds 1.2x best single "
                   "backend %.2f ms on %s\n",
                   w.portfolio_ms, w.best_single_ms, w.name.c_str());
      std::exit(1);
    }
  }
  const Workload& mult = workloads.back();
  const EngineRun* bdd = find_run(mult, "bdd");
  const EngineRun* sat = find_run(mult, "sat");
  if (bdd == nullptr || bdd->verdict != std::string("exhausted")) {
    std::fprintf(stderr,
                 "error: capped BDD run did not exhaust on multiplier_like "
                 "(got %s) — the workload no longer separates the engines\n",
                 bdd == nullptr ? "missing" : bdd->verdict.c_str());
    std::exit(1);
  }
  if (sat == nullptr || sat->verdict != std::string("proven")) {
    std::fprintf(stderr,
                 "error: SAT run was not definitive on multiplier_like "
                 "(got %s)\n",
                 sat == nullptr ? "missing" : sat->verdict.c_str());
    std::exit(1);
  }
  std::printf("\nengine-matrix contract holds: capped BDD exhausts on the "
              "multiplier cone,\nSAT stays definitive, portfolio conclusive "
              "within its bound on every workload\n");
  emit_bench_json(workloads);
}

}  // namespace rtv

RTV_BENCH_MAIN(rtv::report)
